//! Ground truth emitted alongside the synthetic corpus.
//!
//! The real study had no ground truth — annotations *were* the product.
//! The synthetic corpus knows the true unique keys, categories and defects,
//! which lets the repository additionally evaluate the extraction, dedup
//! and classification stages (`rememberr::evaluate`).

use rememberr_model::{Date, Design, ErratumId, UniqueKey, Vendor};
use serde::{Deserialize, Serialize};

use crate::sampler::BugProfile;

/// One listing of a bug in one document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrueOccurrence {
    /// The document (design) listing the bug.
    pub design: Design,
    /// Erratum number within that document.
    pub number: u32,
    /// 1-based revision that first lists the bug.
    pub revision: u32,
    /// Date of that revision (the true disclosure date).
    pub date: Date,
    /// Title phrasing variant (non-zero for near-duplicate listings).
    pub title_variant: u32,
}

impl TrueOccurrence {
    /// The erratum identifier of this occurrence.
    pub fn id(&self) -> ErratumId {
        ErratumId::new(self.design, self.number)
    }
}

/// A unique bug with its true labels and every listing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrueBug {
    /// Ground-truth unique key.
    pub key: UniqueKey,
    /// Vendor of the affected designs.
    pub vendor: Vendor,
    /// The design on which the bug was first discovered.
    pub discovery: Design,
    /// True annotation, workaround and fix status.
    pub profile: BugProfile,
    /// All listings, sorted by design index (intra-document duplicates
    /// appear as two occurrences with the same design).
    pub occurrences: Vec<TrueOccurrence>,
}

impl TrueBug {
    /// The earliest disclosure date across all occurrences.
    pub fn first_disclosure(&self) -> Option<Date> {
        self.occurrences.iter().map(|o| o.date).min()
    }

    /// True if the bug is listed by the given design.
    pub fn affects(&self, design: Design) -> bool {
        self.occurrences.iter().any(|o| o.design == design)
    }
}

/// Kinds of injected field defects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FieldDefect {
    /// The implications field is missing.
    MissingImplications,
    /// The workaround field is missing.
    MissingWorkaround,
    /// The workaround field appears twice.
    DuplicateWorkaround,
}

/// Ledger of every injected "errata in errata" defect.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DefectLedger {
    /// Errata claimed as newly added by two different revisions.
    pub double_added: Vec<ErratumId>,
    /// Errata never mentioned in the revision summary.
    pub unmentioned: Vec<ErratumId>,
    /// `(design, number)` pairs where one number names two distinct errata.
    pub name_collisions: Vec<(Design, u32)>,
    /// Errata with a missing or duplicated field.
    pub field_defects: Vec<(ErratumId, FieldDefect)>,
    /// Errata whose printed MSR number is wrong.
    pub wrong_msr: Vec<ErratumId>,
    /// `(design, number_a, number_b)` intra-document duplicate pairs.
    pub intra_doc_pairs: Vec<(Design, u32, u32)>,
}

impl DefectLedger {
    /// Total number of injected defect instances.
    pub fn total(&self) -> usize {
        self.double_added.len()
            + self.unmentioned.len()
            + self.name_collisions.len()
            + self.field_defects.len()
            + self.wrong_msr.len()
            + self.intra_doc_pairs.len()
    }
}

/// Complete ground truth for a generated corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Every unique bug with its labels and listings.
    pub bugs: Vec<TrueBug>,
    /// Injected document defects.
    pub defects: DefectLedger,
    /// The AMD "near-miss" pair: two *distinct* bugs whose errata are
    /// textually identical except for the workaround (the paper's
    /// no. 1327 / no. 1329 example). `None` for corpora too small to carry
    /// the pair.
    pub amd_near_miss: Option<(UniqueKey, UniqueKey)>,
}

impl GroundTruth {
    /// Number of unique bugs for a vendor.
    pub fn unique_count(&self, vendor: Vendor) -> usize {
        self.bugs.iter().filter(|b| b.vendor == vendor).count()
    }

    /// Total erratum entries (listings) for a vendor.
    pub fn total_count(&self, vendor: Vendor) -> usize {
        self.bugs
            .iter()
            .filter(|b| b.vendor == vendor)
            .map(|b| b.occurrences.len())
            .sum()
    }

    /// Grand total of erratum entries.
    pub fn grand_total(&self) -> usize {
        self.bugs.iter().map(|b| b.occurrences.len()).sum()
    }

    /// Looks up the bug listed under a given erratum id.
    ///
    /// A name-collision id maps to *two* bugs; this returns the first in key
    /// order (use [`GroundTruth::bugs_for_id`] to see collisions).
    pub fn bug_for_id(&self, id: ErratumId) -> Option<&TrueBug> {
        self.bugs
            .iter()
            .find(|b| b.occurrences.iter().any(|o| o.id() == id))
    }

    /// All bugs listed under a given erratum id (two for collisions).
    pub fn bugs_for_id(&self, id: ErratumId) -> Vec<&TrueBug> {
        self.bugs
            .iter()
            .filter(|b| b.occurrences.iter().any(|o| o.id() == id))
            .collect()
    }

    /// Bugs listed by the given design.
    pub fn bugs_in(&self, design: Design) -> impl Iterator<Item = &TrueBug> {
        self.bugs.iter().filter(move |b| b.affects(design))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_model::Annotation;

    fn bug(key: u32, designs: &[(Design, u32)]) -> TrueBug {
        TrueBug {
            key: UniqueKey(key),
            vendor: designs[0].0.vendor(),
            discovery: designs[0].0,
            profile: BugProfile {
                annotation: Annotation::new(),
                workaround: Default::default(),
                fix: Default::default(),
            },
            occurrences: designs
                .iter()
                .enumerate()
                .map(|(i, &(design, number))| TrueOccurrence {
                    design,
                    number,
                    revision: 1 + i as u32,
                    date: design.release_date(),
                    title_variant: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn counting() {
        let gt = GroundTruth {
            bugs: vec![
                bug(1, &[(Design::Intel6, 1), (Design::Intel7_8, 1)]),
                bug(2, &[(Design::Amd19h, 1361)]),
            ],
            defects: DefectLedger::default(),
            amd_near_miss: None,
        };
        assert_eq!(gt.unique_count(Vendor::Intel), 1);
        assert_eq!(gt.total_count(Vendor::Intel), 2);
        assert_eq!(gt.unique_count(Vendor::Amd), 1);
        assert_eq!(gt.grand_total(), 3);
    }

    #[test]
    fn id_lookup() {
        let gt = GroundTruth {
            bugs: vec![bug(1, &[(Design::Intel6, 42)])],
            defects: DefectLedger::default(),
            amd_near_miss: None,
        };
        let id = ErratumId::new(Design::Intel6, 42);
        assert_eq!(gt.bug_for_id(id).unwrap().key, UniqueKey(1));
        assert!(gt.bug_for_id(ErratumId::new(Design::Intel6, 43)).is_none());
        assert_eq!(gt.bugs_for_id(id).len(), 1);
    }

    #[test]
    fn first_disclosure_is_min() {
        let b = bug(1, &[(Design::Intel7_8, 5), (Design::Intel6, 9)]);
        assert_eq!(b.first_disclosure(), Some(Design::Intel6.release_date()));
        assert!(b.affects(Design::Intel6));
        assert!(!b.affects(Design::Intel10));
    }

    #[test]
    fn ledger_total() {
        let mut ledger = DefectLedger::default();
        ledger.double_added.push(ErratumId::new(Design::Intel6, 1));
        ledger.intra_doc_pairs.push((Design::Intel6, 1, 2));
        assert_eq!(ledger.total(), 2);
    }
}
