//! Deterministic randomness for corpus generation.

/// The RNG used throughout corpus generation.
///
/// ChaCha8 is seedable and stable across `rand` releases, so a given
/// [`crate::CorpusSpec::seed`] always produces the same corpus bit-for-bit.
pub type CorpusRng = rand_chacha::ChaCha8Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = CorpusRng::seed_from_u64(7);
        let mut b = CorpusRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = CorpusRng::seed_from_u64(1);
        let mut b = CorpusRng::seed_from_u64(2);
        let va: [u64; 4] = std::array::from_fn(|_| a.random());
        let vb: [u64; 4] = std::array::from_fn(|_| b.random());
        assert_ne!(va, vb);
    }
}
