//! Rendering structured documents into page streams.
//!
//! Vendor errata ship as PDFs; what a text-extraction tool sees is a stream
//! of fixed-width lines with page headers/footers, hyphenated line breaks,
//! and loosely tabular revision histories. This module produces exactly
//! that, so the extraction crate has the same reconstruction work the
//! original study's `pdftotext`/`camelot` pipeline had.

use rememberr_model::{Design, ErrataDocument, ErratumId, Vendor};
use rememberr_textkit::wrap;

use crate::truth::{DefectLedger, FieldDefect};

/// Width of a rendered text column, in characters.
pub const LINE_WIDTH: usize = 78;

/// Number of content lines per page (between header and footer).
pub const PAGE_LINES: usize = 48;

/// Marker line opening the revision-history table.
pub const REVISION_HEADING: &str = "REVISION HISTORY";

/// Marker line opening the errata listing.
pub const ERRATA_HEADING: &str = "ERRATA DETAILS";

/// Marker line opening the summary table of changes (fixed errata).
pub const SUMMARY_HEADING: &str = "SUMMARY TABLE OF CHANGES";

/// A rendered document: the design and its page stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenderedDocument {
    /// The design the document covers.
    pub design: Design,
    /// Page stream: pages separated by form feeds, each page carrying a
    /// header and footer line.
    pub text: String,
}

/// Compresses a sorted number list into `a-b, c, d-e` range notation, with
/// each number printed in the document's identifier form.
pub fn compress_ranges(design: Design, numbers: &[u32]) -> String {
    let form = |n: u32| ErratumId::new(design, n).document_form();
    let mut parts: Vec<String> = Vec::new();
    let mut i = 0;
    while i < numbers.len() {
        let start = numbers[i];
        let mut end = start;
        while i + 1 < numbers.len() && numbers[i + 1] == end + 1 {
            end = numbers[i + 1];
            i += 1;
        }
        if end > start {
            parts.push(format!("{}-{}", form(start), form(end)));
        } else {
            parts.push(form(start));
        }
        i += 1;
    }
    parts.join(", ")
}

/// Renders the content lines of a document (before pagination).
fn content_lines(doc: &ErrataDocument, ledger: &DefectLedger) -> Vec<String> {
    let mut lines = Vec::new();
    let design = doc.design;

    // Title block.
    lines.push(format!(
        "{} Specification Update",
        match design.vendor() {
            Vendor::Intel => "Intel(R) Processor",
            Vendor::Amd => "AMD Processor",
        }
    ));
    lines.push(format!("Document reference: {}", design.reference()));
    lines.push(format!("Covers: {}", design.label()));
    lines.push(String::new());

    // Revision history table.
    lines.push(REVISION_HEADING.to_string());
    lines.push("Rev   Date             Description".to_string());
    for rev in &doc.revisions {
        let desc = if rev.number == 1 {
            if rev.added.is_empty() {
                "Initial release.".to_string()
            } else {
                format!(
                    "Initial release. Added errata {}.",
                    compress_ranges(design, &rev.added)
                )
            }
        } else if rev.added.is_empty() {
            "Editorial changes only.".to_string()
        } else if rev.added.len() == 1 {
            format!("Added erratum {}.", compress_ranges(design, &rev.added))
        } else {
            format!("Added errata {}.", compress_ranges(design, &rev.added))
        };
        // Wrap long descriptions onto continuation lines indented past the
        // date column (as camelot-extracted tables look).
        let head = format!("{:<5} {:<16} ", rev.number, rev.date.to_document_style());
        let wrapped = wrap(&desc, LINE_WIDTH.saturating_sub(head.len()));
        for (i, piece) in wrapped.iter().enumerate() {
            if i == 0 {
                lines.push(format!("{head}{piece}"));
            } else {
                lines.push(format!("{:width$}{piece}", "", width = head.len()));
            }
        }
    }
    lines.push(String::new());

    // Summary table of changes: fixed errata and their steppings.
    lines.push(SUMMARY_HEADING.to_string());
    if doc.fix_summary.is_empty() {
        lines.push("No errata have been fixed in later steppings.".to_string());
    } else {
        lines.push("Erratum    Fixed in stepping".to_string());
        for row in &doc.fix_summary {
            lines.push(format!(
                "{:<10} {}",
                ErratumId::new(design, row.number).document_form(),
                row.stepping
            ));
        }
    }
    lines.push(String::new());

    // Errata.
    lines.push(ERRATA_HEADING.to_string());
    lines.push(String::new());
    for erratum in &doc.errata {
        let id_form = erratum.id.document_form();
        // Header: identifier, two spaces, title (wrapped with indent).
        let title_lines = wrap(&erratum.title, LINE_WIDTH.saturating_sub(id_form.len() + 2));
        for (i, piece) in title_lines.iter().enumerate() {
            if i == 0 {
                lines.push(format!("{id_form}  {piece}"));
            } else {
                lines.push(format!("{:width$}{piece}", "", width = id_form.len() + 2));
            }
        }

        let mut field = |label: &str, text: &str| {
            if text.trim().is_empty() {
                return; // missing-field defect: section omitted entirely
            }
            let first_prefix = format!("{label}: ");
            let wrapped = wrap(text, LINE_WIDTH.saturating_sub(first_prefix.len()));
            for (i, piece) in wrapped.iter().enumerate() {
                if i == 0 {
                    lines.push(format!("{first_prefix}{piece}"));
                } else {
                    lines.push(format!("{:width$}{piece}", "", width = first_prefix.len()));
                }
            }
        };

        field("Problem", &erratum.description);
        field("Implication", &erratum.implications);
        field("Workaround", &erratum.workaround);
        // Duplicated-field defect: the workaround section appears twice.
        let duplicated = ledger
            .field_defects
            .iter()
            .any(|(id, kind)| *id == erratum.id && *kind == FieldDefect::DuplicateWorkaround);
        if duplicated {
            field("Workaround", &erratum.workaround);
        }
        field("Status", &erratum.status);
        lines.push(String::new());
    }

    lines
}

/// Renders a document to its paginated page stream.
pub fn render_document(doc: &ErrataDocument, ledger: &DefectLedger) -> RenderedDocument {
    let lines = content_lines(doc, ledger);
    let mut out = String::new();
    let total_pages = lines.len().div_ceil(PAGE_LINES).max(1);
    for (page_no, chunk) in lines.chunks(PAGE_LINES).enumerate() {
        if page_no > 0 {
            out.push('\u{c}'); // form feed between pages
        }
        out.push_str(&format!(
            "{}    Specification Update    Rev. {}\n",
            doc.design.reference(),
            doc.revisions.last().map_or(0, |r| r.number)
        ));
        out.push('\n');
        for line in chunk {
            out.push_str(line);
            out.push('\n');
        }
        out.push('\n');
        out.push_str(&format!("Page {} of {}\n", page_no + 1, total_pages));
    }
    RenderedDocument {
        design: doc.design,
        text: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::assemble;
    use crate::spec::CorpusSpec;

    fn rendered_small() -> Vec<RenderedDocument> {
        let corpus = assemble(&CorpusSpec::scaled(0.05));
        corpus
            .documents
            .iter()
            .map(|d| render_document(d, &corpus.truth.defects))
            .collect()
    }

    #[test]
    fn pages_have_headers_and_footers() {
        for doc in rendered_small() {
            let pages: Vec<&str> = doc.text.split('\u{c}').collect();
            assert!(!pages.is_empty());
            for (i, page) in pages.iter().enumerate() {
                assert!(
                    page.starts_with(doc.design.reference()),
                    "page {i} of {} lacks header",
                    doc.design
                );
                assert!(page.contains(&format!("Page {} of", i + 1)));
            }
        }
    }

    #[test]
    fn lines_respect_width() {
        for doc in rendered_small() {
            for line in doc.text.lines() {
                assert!(
                    line.len() <= LINE_WIDTH + 2,
                    "{}: line too long: {line:?}",
                    doc.design
                );
            }
        }
    }

    #[test]
    fn headings_present() {
        for doc in rendered_small() {
            assert!(doc.text.contains(REVISION_HEADING), "{}", doc.design);
            assert!(doc.text.contains(ERRATA_HEADING), "{}", doc.design);
        }
    }

    #[test]
    fn every_erratum_id_appears() {
        let corpus = assemble(&CorpusSpec::scaled(0.05));
        for doc in &corpus.documents {
            let rendered = render_document(doc, &corpus.truth.defects);
            for e in &doc.errata {
                assert!(
                    rendered.text.contains(&e.id.document_form()),
                    "{} missing {}",
                    doc.design,
                    e.id
                );
            }
        }
    }

    #[test]
    fn summary_table_lists_fixed_errata() {
        let corpus = assemble(&CorpusSpec::paper());
        let doc = corpus
            .documents
            .iter()
            .find(|d| !d.fix_summary.is_empty())
            .expect("some document has fixed errata");
        let rendered = render_document(doc, &corpus.truth.defects);
        assert!(rendered.text.contains(SUMMARY_HEADING));
        let first = &doc.fix_summary[0];
        let form = rememberr_model::ErratumId::new(doc.design, first.number).document_form();
        assert!(
            rendered
                .text
                .contains(&format!("{form:<10} {}", first.stepping)),
            "summary row for {form} missing"
        );
    }

    #[test]
    fn compress_ranges_output() {
        let d = Design::Amd19h;
        assert_eq!(compress_ranges(d, &[]), "");
        assert_eq!(compress_ranges(d, &[5]), "5");
        assert_eq!(compress_ranges(d, &[1, 2, 3]), "1-3");
        assert_eq!(compress_ranges(d, &[1, 2, 4, 7, 8]), "1-2, 4, 7-8");
        let i = Design::Intel6;
        assert_eq!(compress_ranges(i, &[1, 2, 3]), "SKL001-SKL003");
    }

    /// Strips pagination (headers/footers) so block-level assertions are
    /// independent of where page breaks fall.
    fn depaginated(text: &str) -> String {
        let mut content = Vec::new();
        for page in text.split('\u{c}') {
            let mut lines: Vec<&str> = page.split('\n').collect();
            if lines.last() == Some(&"") {
                lines.pop();
            }
            content.extend(lines[2..lines.len() - 2].iter().copied());
        }
        content.join("\n")
    }

    fn erratum_block(text: &str, id_form: &str) -> String {
        let flat = depaginated(text);
        let start = flat.find(&format!("{id_form}  ")).expect("block start");
        let rest = &flat[start..];
        let end = rest.find("\n\n").unwrap_or(rest.len());
        rest[..end].to_string()
    }

    #[test]
    fn duplicated_workaround_renders_twice() {
        let corpus = assemble(&CorpusSpec::paper());
        let dup = corpus
            .truth
            .defects
            .field_defects
            .iter()
            .find(|(_, k)| *k == FieldDefect::DuplicateWorkaround)
            .expect("a duplicate-workaround defect exists");
        let doc = &corpus.documents[dup.0.design.index()];
        let rendered = render_document(doc, &corpus.truth.defects);
        let block = erratum_block(&rendered.text, &dup.0.document_form());
        assert_eq!(block.matches("Workaround: ").count(), 2, "block: {block}");
    }

    #[test]
    fn missing_fields_render_nothing() {
        let corpus = assemble(&CorpusSpec::paper());
        let missing = corpus
            .truth
            .defects
            .field_defects
            .iter()
            .find(|(_, k)| *k == FieldDefect::MissingWorkaround)
            .expect("a missing-workaround defect exists");
        let doc = &corpus.documents[missing.0.design.index()];
        let rendered = render_document(doc, &corpus.truth.defects);
        let block = erratum_block(&rendered.text, &missing.0.document_form());
        assert!(!block.contains("Workaround: "));
    }
}
