//! Corpus calibration: every population number the paper reports, as a
//! tunable specification.
//!
//! The default [`CorpusSpec`] reproduces the paper's corpus: 2,563 errata
//! (Intel 2,057 of which 743 unique; AMD 506 of which 385 unique), the
//! heredity structure of Figure 3 (104 bugs shared by all Intel generations
//! 6-10, 6 bugs spanning Core 1 to Core 10, one Core 2 erratum resurfacing
//! in Core 12), the per-category frequency profiles of Figures 10-19, and
//! the six "errata in errata" defect classes with their exact counts.

use rememberr_model::{Date, Design, Vendor};
use serde::{Deserialize, Serialize};

/// Full corpus specification. Construct via [`CorpusSpec::default`] (paper
/// calibration) and adjust fields, or use [`CorpusSpec::scaled`] for small
/// test corpora.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusSpec {
    /// RNG seed; corpora are bit-reproducible per seed.
    pub seed: u64,
    /// Number of unique Intel bugs (paper: 743).
    pub intel_unique: usize,
    /// Total Intel erratum entries across documents (paper: 2,057).
    pub intel_total: usize,
    /// Number of unique AMD bugs (paper: 385).
    pub amd_unique: usize,
    /// Total AMD erratum entries across documents (paper: 506).
    pub amd_total: usize,
    /// Bugs shared by all Intel generations 6-10 (paper: 104, including the
    /// long-lived ones below).
    pub gen6_to_10_shared: usize,
    /// Bugs present from Core 1 through Core 10 (paper: 6).
    pub core1_to_core10: usize,
    /// Probability that a bug affecting a gen <= 5 Intel generation appears
    /// in both the Desktop and Mobile documents of that generation.
    pub desktop_mobile_share: f64,
    /// Per-generation forward propagation probability (Intel).
    pub intel_propagation: f64,
    /// Per-family propagation probability within related AMD families.
    pub amd_propagation: f64,
    /// Fraction of shared bugs discovered on the *newer* design first
    /// (backward-latent, Figure 5).
    pub backward_latent_fraction: f64,
    /// Mean of the exponential discovery-delay distribution, in days
    /// (drives the concave curves of Figure 2).
    pub discovery_mean_days: f64,
    /// Snapshot date of the corpus (documents have no revisions after it).
    pub snapshot: Date,
    /// Fraction of errata whose description only offers a "complex set of
    /// conditions", per vendor (paper: Intel 8.7%, AMD 20.8%).
    pub complex_conditions_rate: VendorPair<f64>,
    /// Fraction of unique errata without any suggested workaround
    /// (paper: Intel 35.9%, AMD 28.9%).
    pub no_workaround_rate: VendorPair<f64>,
    /// Distribution of the number of *clear* abstract triggers per erratum,
    /// indexed from 1 (weights, normalized internally). Calibrated so ~49%
    /// of errata with clear triggers need >= 2 (Figure 11).
    pub trigger_count_weights: Vec<f64>,
    /// Fraction of errata with no clear trigger (paper: 14.4%).
    pub no_clear_trigger_rate: f64,
    /// Defect-injection counts ("errata in errata", Section IV-A).
    pub defects: DefectSpec,
    /// Number of manually-identified Intel near-duplicate pairs whose titles
    /// differ slightly between documents (paper: 29).
    pub near_duplicate_pairs: usize,
}

/// A pair of values, one per vendor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VendorPair<T> {
    /// The Intel value.
    pub intel: T,
    /// The AMD value.
    pub amd: T,
}

impl<T: Copy> VendorPair<T> {
    /// Selects the value for a vendor.
    pub fn get(&self, vendor: Vendor) -> T {
        match vendor {
            Vendor::Intel => self.intel,
            Vendor::Amd => self.amd,
        }
    }
}

/// Exact counts for the six documented defect classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DefectSpec {
    /// Errata claimed as added by two revisions (paper: 8 errata / 3 docs).
    pub double_added_errata: usize,
    /// Documents carrying double-added errata.
    pub double_added_docs: usize,
    /// Errata never mentioned in revision notes (paper: 12 errata / 2 docs).
    pub unmentioned_errata: usize,
    /// Documents carrying unmentioned errata.
    pub unmentioned_docs: usize,
    /// Reused erratum names: one identifier, two different errata
    /// (paper: 1, the erratum named AAJ143).
    pub name_collisions: usize,
    /// Errata with missing or duplicated fields (paper: 7 errata / 4 docs).
    pub field_defect_errata: usize,
    /// Documents carrying field defects.
    pub field_defect_docs: usize,
    /// Errata with erroneous MSR numbers (paper: 3 errata / 3 docs).
    pub wrong_msr_errata: usize,
    /// Intra-document duplicated erratum pairs (paper: 11 pairs / 6 docs).
    pub intra_doc_duplicate_pairs: usize,
    /// Documents carrying intra-document duplicates.
    pub intra_doc_duplicate_docs: usize,
}

impl Default for DefectSpec {
    fn default() -> Self {
        Self {
            double_added_errata: 8,
            double_added_docs: 3,
            unmentioned_errata: 12,
            unmentioned_docs: 2,
            name_collisions: 1,
            field_defect_errata: 7,
            field_defect_docs: 4,
            wrong_msr_errata: 3,
            intra_doc_duplicate_pairs: 11,
            intra_doc_duplicate_docs: 6,
        }
    }
}

impl Default for CorpusSpec {
    fn default() -> Self {
        Self {
            seed: 0x5EED_2022,
            intel_unique: 743,
            intel_total: 2_057,
            amd_unique: 385,
            amd_total: 506,
            gen6_to_10_shared: 104,
            core1_to_core10: 6,
            desktop_mobile_share: 0.85,
            intel_propagation: 0.38,
            amd_propagation: 0.22,
            backward_latent_fraction: 0.15,
            discovery_mean_days: 400.0,
            snapshot: Date::new(2022, 8, 1).expect("valid snapshot date"),
            complex_conditions_rate: VendorPair {
                intel: 0.087,
                amd: 0.208,
            },
            no_workaround_rate: VendorPair {
                intel: 0.359,
                amd: 0.289,
            },
            trigger_count_weights: vec![0.51, 0.30, 0.13, 0.045, 0.015],
            no_clear_trigger_rate: 0.144,
            defects: DefectSpec::default(),
            near_duplicate_pairs: 29,
        }
    }
}

/// A reason a [`CorpusSpec`] is not generatable.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecError {
    /// A vendor's total is below its unique count.
    TotalBelowUnique(Vendor),
    /// The gen-6-to-10 shared block exceeds the Intel unique count.
    SharedBlockTooLarge,
    /// A probability field is outside `[0, 1]`.
    BadProbability(&'static str),
    /// The trigger-count weights are empty or non-positive.
    BadTriggerWeights,
    /// Defect counts exceed what the corpus can host.
    DefectsExceedCorpus,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::TotalBelowUnique(v) => {
                write!(f, "{v} total is below the unique count")
            }
            SpecError::SharedBlockTooLarge => {
                write!(f, "gen6_to_10_shared exceeds intel_unique")
            }
            SpecError::BadProbability(field) => {
                write!(f, "{field} must lie in [0, 1]")
            }
            SpecError::BadTriggerWeights => {
                write!(
                    f,
                    "trigger_count_weights must be non-empty with a positive sum"
                )
            }
            SpecError::DefectsExceedCorpus => {
                write!(f, "defect counts exceed the corpus population")
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl CorpusSpec {
    /// The paper-calibrated specification (same as `Default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Validates that the specification can be generated.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`SpecError`].
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.intel_total < self.intel_unique {
            return Err(SpecError::TotalBelowUnique(Vendor::Intel));
        }
        if self.amd_total < self.amd_unique {
            return Err(SpecError::TotalBelowUnique(Vendor::Amd));
        }
        if self.gen6_to_10_shared > self.intel_unique {
            return Err(SpecError::SharedBlockTooLarge);
        }
        for (field, value) in [
            ("desktop_mobile_share", self.desktop_mobile_share),
            ("intel_propagation", self.intel_propagation),
            ("amd_propagation", self.amd_propagation),
            ("backward_latent_fraction", self.backward_latent_fraction),
            ("no_clear_trigger_rate", self.no_clear_trigger_rate),
            (
                "complex_conditions_rate.intel",
                self.complex_conditions_rate.intel,
            ),
            (
                "complex_conditions_rate.amd",
                self.complex_conditions_rate.amd,
            ),
            ("no_workaround_rate.intel", self.no_workaround_rate.intel),
            ("no_workaround_rate.amd", self.no_workaround_rate.amd),
        ] {
            if !(0.0..=1.0).contains(&value) {
                return Err(SpecError::BadProbability(field));
            }
        }
        if self.trigger_count_weights.is_empty()
            || self.trigger_count_weights.iter().any(|w| *w < 0.0)
            || self.trigger_count_weights.iter().sum::<f64>() <= 0.0
        {
            return Err(SpecError::BadTriggerWeights);
        }
        let d = &self.defects;
        let budget = self.intel_total / 4;
        if d.double_added_errata
            + d.unmentioned_errata
            + d.field_defect_errata
            + d.intra_doc_duplicate_pairs
            > budget.max(40)
        {
            return Err(SpecError::DefectsExceedCorpus);
        }
        Ok(())
    }

    /// A proportionally scaled-down corpus for fast tests and examples.
    ///
    /// `factor` in `(0, 1]` scales the bug populations; defect counts and
    /// structural constants are scaled with a floor so small corpora still
    /// exercise every code path.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn scaled(factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1]");
        let spec = Self::default();
        let s = |n: usize| ((n as f64 * factor).round() as usize).max(1);
        Self {
            intel_unique: s(spec.intel_unique),
            intel_total: s(spec.intel_total).max(s(spec.intel_unique)),
            amd_unique: s(spec.amd_unique),
            amd_total: s(spec.amd_total).max(s(spec.amd_unique)),
            gen6_to_10_shared: s(spec.gen6_to_10_shared),
            core1_to_core10: s(spec.core1_to_core10).min(s(spec.gen6_to_10_shared)),
            near_duplicate_pairs: s(spec.near_duplicate_pairs),
            defects: DefectSpec {
                double_added_errata: s(8).min(8),
                double_added_docs: s(3).min(3),
                unmentioned_errata: s(12).min(12),
                unmentioned_docs: s(2).min(2),
                name_collisions: 1,
                field_defect_errata: s(7).min(7),
                field_defect_docs: s(4).min(4),
                wrong_msr_errata: s(3).min(3),
                intra_doc_duplicate_pairs: s(11).min(11),
                intra_doc_duplicate_docs: s(6).min(6),
            },
            ..spec
        }
    }

    /// Unique-bug target for a vendor.
    pub fn unique_for(&self, vendor: Vendor) -> usize {
        match vendor {
            Vendor::Intel => self.intel_unique,
            Vendor::Amd => self.amd_unique,
        }
    }

    /// Total-entry target for a vendor.
    pub fn total_for(&self, vendor: Vendor) -> usize {
        match vendor {
            Vendor::Intel => self.intel_total,
            Vendor::Amd => self.amd_total,
        }
    }

    /// Grand total of erratum entries (paper: 2,563).
    pub fn grand_total(&self) -> usize {
        self.intel_total + self.amd_total
    }

    /// Number of revisions each document receives.
    ///
    /// For Intel the revision number embedded in the document reference is
    /// authoritative (`332689-028US` is revision 28); AMD references use a
    /// `major.minor` scheme from which we derive a coarser count, matching
    /// the observation that AMD updates its documents less frequently.
    pub fn revision_count(&self, design: Design) -> u32 {
        let reference = design.reference();
        match design.vendor() {
            Vendor::Intel => reference
                .split('-')
                .nth(1)
                .and_then(|r| r.trim_end_matches("US").parse::<u32>().ok())
                .unwrap_or(10)
                .max(1),
            Vendor::Amd => {
                // "41322-3.84" -> minor 84 -> ~1 revision per ~8 minor bumps.
                let minor: u32 = reference
                    .split('.')
                    .nth(1)
                    .and_then(|r| r.parse().ok())
                    .unwrap_or(8);
                (minor / 8).clamp(2, 14)
            }
        }
    }

    /// Relative size weight of each document within its vendor; used to
    /// apportion bug introductions. Later designs get smaller weights ("the
    /// latest microarchitectures seem to be less affected").
    pub fn document_weight(&self, design: Design) -> f64 {
        match design {
            Design::Intel1D => 1.15,
            Design::Intel1M => 1.05,
            Design::Intel2D => 1.0,
            Design::Intel2M => 0.95,
            Design::Intel3D => 0.9,
            Design::Intel3M => 0.85,
            Design::Intel4D => 1.0,
            Design::Intel4M => 0.95,
            Design::Intel5D => 0.7,
            Design::Intel5M => 0.75,
            Design::Intel6 => 1.1,
            Design::Intel7_8 => 0.8,
            Design::Intel8_9 => 0.7,
            Design::Intel10 => 0.6,
            Design::Intel11 => 0.5,
            Design::Intel12 => 0.4,
            Design::Amd10h => 1.2,
            Design::Amd11h => 0.6,
            Design::Amd12h => 0.8,
            Design::Amd14h => 0.9,
            Design::Amd15h00 => 1.1,
            Design::Amd15h10 => 0.9,
            Design::Amd15h30 => 0.8,
            Design::Amd15h70 => 0.6,
            Design::Amd16h => 0.8,
            Design::Amd17h00 => 1.0,
            Design::Amd17h30 => 0.9,
            Design::Amd19h => 0.7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_totals() {
        let spec = CorpusSpec::paper();
        assert_eq!(spec.grand_total(), 2_563);
        assert_eq!(spec.intel_unique + spec.amd_unique, 1_128);
        spec.validate().expect("the paper spec is generatable");
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let mut spec = CorpusSpec::paper();
        spec.intel_total = 10;
        assert_eq!(
            spec.validate(),
            Err(SpecError::TotalBelowUnique(Vendor::Intel))
        );

        let mut spec = CorpusSpec::paper();
        spec.gen6_to_10_shared = spec.intel_unique + 1;
        assert_eq!(spec.validate(), Err(SpecError::SharedBlockTooLarge));

        let mut spec = CorpusSpec::paper();
        spec.intel_propagation = 1.5;
        assert!(matches!(spec.validate(), Err(SpecError::BadProbability(_))));

        let mut spec = CorpusSpec::paper();
        spec.trigger_count_weights = vec![];
        assert_eq!(spec.validate(), Err(SpecError::BadTriggerWeights));

        let mut spec = CorpusSpec::paper();
        spec.defects.unmentioned_errata = 5_000;
        assert_eq!(spec.validate(), Err(SpecError::DefectsExceedCorpus));
    }

    #[test]
    fn scaled_specs_validate() {
        for factor in [0.02, 0.1, 0.5, 1.0] {
            CorpusSpec::scaled(factor)
                .validate()
                .unwrap_or_else(|e| panic!("scaled({factor}): {e}"));
        }
    }

    #[test]
    fn trigger_count_weights_calibrate_figure_11() {
        // ~49% of errata with clear triggers require at least two.
        let spec = CorpusSpec::paper();
        let total: f64 = spec.trigger_count_weights.iter().sum();
        let multi: f64 = spec.trigger_count_weights[1..].iter().sum();
        let fraction = multi / total;
        assert!((0.44..0.54).contains(&fraction), "{fraction}");
    }

    #[test]
    fn revision_counts_follow_references() {
        let spec = CorpusSpec::paper();
        assert_eq!(spec.revision_count(Design::Intel1D), 37);
        assert_eq!(spec.revision_count(Design::Intel6), 28);
        assert_eq!(spec.revision_count(Design::Intel12), 4);
        // AMD counts are coarse and bounded.
        for design in Design::amd() {
            let n = spec.revision_count(design);
            assert!((2..=14).contains(&n), "{design}: {n}");
        }
    }

    #[test]
    fn intel_documents_have_more_revisions_than_amd_on_average() {
        let spec = CorpusSpec::paper();
        let avg = |iter: &mut dyn Iterator<Item = Design>| {
            let (sum, n) = iter.fold((0u32, 0u32), |(s, n), d| {
                (s + spec.revision_count(d), n + 1)
            });
            f64::from(sum) / f64::from(n)
        };
        let intel = avg(&mut Design::intel());
        let amd = avg(&mut Design::amd());
        assert!(intel > amd, "intel {intel} <= amd {amd}");
    }

    #[test]
    fn scaled_keeps_invariants() {
        let small = CorpusSpec::scaled(0.1);
        assert!(small.intel_total >= small.intel_unique);
        assert!(small.amd_total >= small.amd_unique);
        assert!(small.core1_to_core10 >= 1);
        assert!(small.defects.name_collisions == 1);
        assert!(small.gen6_to_10_shared >= small.core1_to_core10);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn scaled_rejects_bad_factor() {
        let _ = CorpusSpec::scaled(0.0);
    }

    #[test]
    fn vendor_pair_selection() {
        let pair = VendorPair { intel: 1, amd: 2 };
        assert_eq!(pair.get(Vendor::Intel), 1);
        assert_eq!(pair.get(Vendor::Amd), 2);
    }

    #[test]
    fn document_weights_are_positive() {
        let spec = CorpusSpec::paper();
        for design in Design::ALL {
            assert!(spec.document_weight(design) > 0.0);
        }
    }
}
