//! Calibrated synthetic errata-corpus generator.
//!
//! The RemembERR study ingests 28 proprietary Intel/AMD PDF errata
//! documents. Those PDFs cannot ship with an open reproduction, so this
//! crate generates a *statistically equivalent* corpus: the same documents
//! (Table III), the same population numbers (2,563 errata; 743 unique Intel,
//! 385 unique AMD), the same heredity structure (Figure 3), timeline shape
//! (Figure 2), category frequency profiles (Figures 10-19), workaround/fix
//! mixes (Figures 6-7), and the same six classes of "errata in errata"
//! defects with the paper's exact counts — rendered into fixed-width page
//! streams that demand the same extraction effort as PDF-extracted text.
//!
//! Unlike the real corpus, the synthetic one comes with [`GroundTruth`],
//! so the downstream pipeline (extraction, dedup, classification) can be
//! *evaluated*, not just run.
//!
//! # Examples
//!
//! ```
//! use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
//!
//! // A small corpus for experimentation; `CorpusSpec::paper()` gives the
//! // full 2,563-erratum corpus.
//! let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.02));
//! let first = &corpus.rendered[0];
//! assert!(first.text.contains("REVISION HISTORY"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod assemble;
mod bugpool;
mod corpus;
mod render;
mod rng;
mod sampler;
mod spec;
mod text;
mod timeline;
mod truth;

pub use assemble::{assemble, AssembledCorpus};
pub use bugpool::{build_pool, BugSeed};
pub use corpus::SyntheticCorpus;
pub use render::{
    compress_ranges, render_document, RenderedDocument, ERRATA_HEADING, LINE_WIDTH, PAGE_LINES,
    REVISION_HEADING, SUMMARY_HEADING,
};
pub use rng::CorpusRng;
pub use sampler::{sample_profile, BugProfile};
pub use spec::{CorpusSpec, DefectSpec, SpecError, VendorPair};
pub use text::{complex_conditions_marker, render_bug_text, BugText};
pub use timeline::{exponential_days, raw_disclosure_dates, RevisionSchedule};
pub use truth::{DefectLedger, FieldDefect, GroundTruth, TrueBug, TrueOccurrence};
