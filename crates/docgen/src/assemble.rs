//! Assembly of structured errata documents and ground truth.
//!
//! This stage turns the bug pool into the 28 [`ErrataDocument`]s: it
//! schedules disclosure dates onto revision grids, numbers errata the way
//! each vendor does (Intel: per-document sequential with a prefix; AMD: one
//! global number per bug), renders the prose, injects the "errata in
//! errata" defects with the paper's exact counts, and emits the ground
//! truth used for pipeline evaluation.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rememberr_model::{Date, Design, ErrataDocument, Erratum, ErratumId, Revision, Vendor};

use crate::bugpool::{build_pool, BugSeed};
use crate::rng::CorpusRng;
use crate::sampler::{sample_profile, BugProfile};
use crate::spec::CorpusSpec;
use crate::text::{alternative_workaround, render_bug_text, vendor_boilerplate};
use crate::timeline::{raw_disclosure_dates, RevisionSchedule};
use crate::truth::{DefectLedger, FieldDefect, GroundTruth, TrueBug, TrueOccurrence};

/// The assembled corpus: structured documents plus ground truth.
///
/// The defect ledger inside [`GroundTruth`] also instructs the text
/// renderer (duplicated fields only exist at the page-stream level).
#[derive(Debug, Clone)]
pub struct AssembledCorpus {
    /// One structured document per design, in [`Design::ALL`] order.
    pub documents: Vec<ErrataDocument>,
    /// Ground truth: bugs, labels, occurrences, defects.
    pub truth: GroundTruth,
}

/// One planned listing of a bug before numbering.
#[derive(Debug, Clone, Copy)]
struct OccRec {
    design: Design,
    revision: u32,
    date: Date,
    variant: u32,
    /// Erratum number, assigned by the numbering pass.
    number: u32,
}

/// Assembles the full corpus for a specification.
pub fn assemble(spec: &CorpusSpec) -> AssembledCorpus {
    let mut rng = CorpusRng::seed_from_u64(spec.seed);
    let pool = build_pool(spec, &mut rng);
    let mut profiles: Vec<BugProfile> = pool
        .iter()
        .map(|bug| sample_profile(spec, bug, &mut rng))
        .collect();

    let near_miss = apply_amd_near_miss_pair(&pool, &mut profiles, &mut rng);
    let near_miss_keys = near_miss.map(|(a, b)| (pool[a].key, pool[b].key));

    let schedules: Vec<RevisionSchedule> = Design::ALL
        .iter()
        .map(|&d| RevisionSchedule::build(spec, d))
        .collect();

    // ---- Occurrence scheduling ---------------------------------------------
    let mut occs: Vec<Vec<OccRec>> = pool
        .iter()
        .map(|bug| {
            raw_disclosure_dates(spec, &bug.affected, bug.discovery, &mut rng)
                .into_iter()
                .map(|(design, raw)| {
                    let (revision, date) = schedules[design.index()].snap(raw);
                    OccRec {
                        design,
                        revision,
                        date,
                        variant: 0,
                        number: 0,
                    }
                })
                .collect()
        })
        .collect();

    let mut ledger = DefectLedger::default();
    plan_intra_doc_duplicates(spec, &pool, &mut occs, &schedules, &mut rng);
    plan_near_duplicate_variants(spec, &pool, &mut occs, &mut rng);

    // ---- Numbering ----------------------------------------------------------
    assign_intel_numbers(&pool, &mut occs);
    assign_amd_numbers(&pool, &mut occs, &mut rng);

    // ---- Title uniquification -----------------------------------------------
    // Intel duplicate detection rests on "identical titles imply identical
    // errata" (Section IV-A); distinct bugs therefore must not share a
    // normalized title. Styles reshuffle phrasing until every title is
    // unique.
    let styles = uniquify_titles(spec, &pool, &profiles);

    // ---- Render prose and build documents ---------------------------------
    let mut documents: Vec<ErrataDocument> = Design::ALL
        .iter()
        .map(|&d| ErrataDocument::new(d))
        .collect();

    for (bug_idx, bug) in pool.iter().enumerate() {
        // Fill concrete-level ground-truth strings from the canonical text.
        let canonical = render_bug_text(spec, bug, &profiles[bug_idx], 0, styles[bug_idx]);
        profiles[bug_idx].annotation.concrete_triggers = canonical.concrete_triggers.clone();
        profiles[bug_idx].annotation.concrete_contexts = canonical.concrete_contexts.clone();
        profiles[bug_idx].annotation.concrete_effects = canonical.concrete_effects.clone();

        for occ in &occs[bug_idx] {
            let text = if occ.variant == 0 {
                canonical.clone()
            } else {
                render_bug_text(spec, bug, &profiles[bug_idx], occ.variant, styles[bug_idx])
            };
            let mut implications = text.implications;
            if rng.random_bool(0.3) {
                implications.push(' ');
                implications.push_str(vendor_boilerplate(bug.vendor));
            }
            documents[occ.design.index()].errata.push(Erratum {
                id: ErratumId::new(occ.design, occ.number),
                title: text.title,
                description: text.description,
                implications,
                workaround: text.workaround,
                status: text.status,
            });
        }
    }
    for doc in &mut documents {
        doc.errata.sort_by_key(|e| e.id.number);
    }

    // The AMD near-miss pair becomes textually identical except for the
    // workaround (errata "1327 vs 1329": distinguishable only by that field).
    if let Some((a_idx, b_idx)) = near_miss {
        let a_text = render_bug_text(spec, &pool[a_idx], &profiles[a_idx], 0, styles[a_idx]);
        let b_design = pool[b_idx].affected[0];
        let b_number = occs[b_idx][0].number;
        let doc = &mut documents[b_design.index()];
        if let Some(entry) = doc.errata.iter_mut().find(|e| e.id.number == b_number) {
            entry.title = a_text.title;
            entry.description = a_text.description.clone();
            entry.implications = a_text.implications;
            entry.workaround = alternative_workaround(profiles[b_idx].workaround).to_string();
        }
        profiles[b_idx].annotation.concrete_triggers = a_text.concrete_triggers;
        profiles[b_idx].annotation.concrete_contexts = a_text.concrete_contexts;
        profiles[b_idx].annotation.concrete_effects = a_text.concrete_effects;
    }

    // ---- Revision histories -------------------------------------------------
    for (design_idx, doc) in documents.iter_mut().enumerate() {
        let schedule = &schedules[design_idx];
        let mut revisions: Vec<Revision> = schedule
            .dates
            .iter()
            .enumerate()
            .map(|(i, &date)| Revision {
                number: (i + 1) as u32,
                date,
                added: Vec::new(),
            })
            .collect();
        for occ_list in occs.iter() {
            for occ in occ_list {
                if occ.design.index() == design_idx {
                    revisions[(occ.revision - 1) as usize]
                        .added
                        .push(occ.number);
                }
            }
        }
        for rev in &mut revisions {
            rev.added.sort_unstable();
        }
        doc.revisions = revisions;
    }

    // ---- Defect injection ---------------------------------------------------
    inject_double_added(spec, &mut documents, &mut ledger);
    inject_unmentioned(spec, &mut documents, &mut ledger);
    inject_name_collision(spec, &mut documents, &mut occs, &pool, &mut ledger);
    inject_field_defects(spec, &mut documents, &mut ledger);
    inject_wrong_msr(spec, &pool, &profiles, &occs, &mut documents, &mut ledger);

    // ---- Summary tables of changes ------------------------------------------
    // Fixed errata are attributed to a stepping; the per-erratum status
    // field points here ("refer to the Summary Table of Changes").
    for (bug_idx, bug) in pool.iter().enumerate() {
        if profiles[bug_idx].fix != rememberr_model::FixStatus::Fixed {
            continue;
        }
        for occ in &occs[bug_idx] {
            let steppings = occ.design.steppings();
            let pick = (u64::from(bug.key.value()) ^ spec.seed) as usize % steppings.len();
            // Fixes land in a late stepping: skip the initial one.
            let stepping = steppings[pick.max(1).min(steppings.len() - 1)];
            documents[occ.design.index()]
                .fix_summary
                .push(rememberr_model::FixedIn {
                    number: occ.number,
                    stepping: stepping.to_string(),
                });
        }
    }
    for doc in &mut documents {
        doc.fix_summary.sort_by_key(|f| f.number);
        doc.fix_summary.dedup();
    }

    // ---- Ground truth --------------------------------------------------------
    let bugs: Vec<TrueBug> = pool
        .into_iter()
        .zip(profiles)
        .zip(occs)
        .map(|((bug, profile), occ_list)| TrueBug {
            key: bug.key,
            vendor: bug.vendor,
            discovery: bug.discovery,
            profile,
            occurrences: occ_list
                .into_iter()
                .map(|o| TrueOccurrence {
                    design: o.design,
                    number: o.number,
                    revision: o.revision,
                    date: o.date,
                    title_variant: o.variant,
                })
                .collect(),
        })
        .collect();

    ledger.intra_doc_pairs = ledger_intra_doc_pairs(&bugs);

    AssembledCorpus {
        documents,
        truth: GroundTruth {
            bugs,
            defects: ledger,
            amd_near_miss: near_miss_keys,
        },
    }
}

/// Finds a style per bug such that all normalized titles are distinct.
fn uniquify_titles(spec: &CorpusSpec, pool: &[BugSeed], profiles: &[BugProfile]) -> Vec<u32> {
    let mut used: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut styles = vec![0u32; pool.len()];
    for (i, bug) in pool.iter().enumerate() {
        let mut style = 0u32;
        loop {
            let text = render_bug_text(spec, bug, &profiles[i], 0, style);
            let key = rememberr_textkit::normalized_key(&text.title);
            if used.insert(key) {
                styles[i] = style;
                break;
            }
            style += 1;
            assert!(
                style < 512,
                "cannot find a unique title for bug {} ({:?})",
                bug.key,
                text.title
            );
        }
    }
    styles
}

/// Makes two single-document AMD bugs textually identical except for their
/// workarounds (the paper's example: errata no. 1327 and no. 1329 "only
/// differ in their suggested workaround but may originate from distinct
/// root causes").
fn apply_amd_near_miss_pair(
    pool: &[BugSeed],
    profiles: &mut [BugProfile],
    _rng: &mut CorpusRng,
) -> Option<(usize, usize)> {
    let mut candidates = pool
        .iter()
        .enumerate()
        .filter(|(_, b)| b.vendor == Vendor::Amd && b.affected.len() == 1);
    let (first, a) = candidates.next()?;
    let (second, _) = candidates.find(|(_, b)| b.affected == a.affected)?;
    let mut clone = profiles[first].clone();
    // A different workaround category keeps the pair distinguishable only by
    // its workaround field.
    clone.workaround = alternative_workaround_category(profiles[first].workaround);
    profiles[second] = clone;
    Some((first, second))
}

fn alternative_workaround_category(
    w: rememberr_model::WorkaroundCategory,
) -> rememberr_model::WorkaroundCategory {
    use rememberr_model::WorkaroundCategory::*;
    match w {
        Bios => Software,
        Software => Bios,
        Peripherals => Software,
        Absent => Bios,
        None => Software,
        DocumentationFix => Software,
    }
}

/// Duplicates a listing inside the same document for the planned number of
/// pairs, spread over the planned number of documents.
fn plan_intra_doc_duplicates(
    spec: &CorpusSpec,
    pool: &[BugSeed],
    occs: &mut [Vec<OccRec>],
    schedules: &[RevisionSchedule],
    rng: &mut CorpusRng,
) {
    let docs: Vec<Design> = Design::intel()
        .take(spec.defects.intra_doc_duplicate_docs.max(1))
        .collect();
    let mut placed = 0usize;
    let mut bug_order: Vec<usize> = (0..pool.len()).collect();
    bug_order.shuffle(rng);
    'outer: for round in 0.. {
        for &doc in &docs {
            if placed >= spec.defects.intra_doc_duplicate_pairs {
                break 'outer;
            }
            // Find the next bug with exactly one listing in `doc` and no
            // variant listings anywhere yet (each duplicated pair must be a
            // distinct bug, or two injected copies would merge with each
            // other instead of counting as separate pairs).
            let Some(&bug_idx) = bug_order.iter().find(|&&i| {
                occs[i].iter().filter(|o| o.design == doc).count() == 1
                    && occs[i].iter().all(|o| o.variant == 0)
            }) else {
                continue;
            };
            let base = *occs[bug_idx]
                .iter()
                .find(|o| o.design == doc)
                .expect("listing exists");
            let schedule = &schedules[doc.index()];
            let next_rev = (base.revision + 1).min(schedule.len() as u32);
            let date = schedule.dates[(next_rev - 1) as usize];
            occs[bug_idx].push(OccRec {
                design: doc,
                revision: next_rev,
                date,
                variant: 1, // phrased slightly differently, as in real documents
                number: 0,
            });
            placed += 1;
            // Rotate the order so different bugs are chosen per document.
            bug_order.rotate_left(1);
        }
        if round > pool.len() {
            break;
        }
    }
}

/// Marks the second listing of some multi-document Intel bugs with a title
/// phrasing variant — the 29 pairs the study had to match manually.
fn plan_near_duplicate_variants(
    spec: &CorpusSpec,
    pool: &[BugSeed],
    occs: &mut [Vec<OccRec>],
    rng: &mut CorpusRng,
) {
    let mut candidates: Vec<usize> = (0..pool.len())
        .filter(|&i| {
            pool[i].vendor == Vendor::Intel
                && occs[i].len() >= 2
                && occs[i].iter().all(|o| o.variant == 0)
        })
        .collect();
    candidates.shuffle(rng);
    for &bug_idx in candidates.iter().take(spec.near_duplicate_pairs) {
        occs[bug_idx][1].variant = 1;
    }
}

/// Intel numbering: per document, sequential in disclosure order.
fn assign_intel_numbers(pool: &[BugSeed], occs: &mut [Vec<OccRec>]) {
    for design in Design::intel() {
        let mut slots: Vec<(usize, usize)> = Vec::new();
        for (bug_idx, occ_list) in occs.iter().enumerate() {
            for (occ_idx, occ) in occ_list.iter().enumerate() {
                if occ.design == design {
                    slots.push((bug_idx, occ_idx));
                }
            }
        }
        slots.sort_by_key(|&(b, o)| (occs[b][o].revision, occs[b][o].date, pool[b].key, o));
        for (number, &(b, o)) in slots.iter().enumerate() {
            occs[b][o].number = (number + 1) as u32;
        }
    }
}

/// AMD numbering: one global number per bug, shared across documents,
/// ascending with gaps in first-disclosure order.
fn assign_amd_numbers(pool: &[BugSeed], occs: &mut [Vec<OccRec>], rng: &mut CorpusRng) {
    let mut amd_bugs: Vec<usize> = (0..pool.len())
        .filter(|&i| pool[i].vendor == Vendor::Amd)
        .collect();
    amd_bugs.sort_by_key(|&i| {
        (
            occs[i].iter().map(|o| o.date).min().expect("occurrences"),
            pool[i].key,
        )
    });
    let mut number = 57u32;
    for &bug_idx in &amd_bugs {
        number += rng.random_range(1..=3);
        for occ in &mut occs[bug_idx] {
            occ.number = number;
        }
    }
}

/// Picks a deterministic spread of Intel documents for a defect class.
fn defect_docs(count: usize, offset: usize) -> Vec<Design> {
    Design::intel().skip(offset).take(count).collect()
}

/// Revision logs that claim the same erratum twice (8 errata / 3 docs).
fn inject_double_added(
    spec: &CorpusSpec,
    documents: &mut [ErrataDocument],
    ledger: &mut DefectLedger,
) {
    let docs = defect_docs(spec.defects.double_added_docs, 1);
    let per_doc = spec.defects.double_added_errata.div_ceil(docs.len().max(1));
    let mut remaining = spec.defects.double_added_errata;
    for design in docs {
        let doc = &mut documents[design.index()];
        let take = per_doc.min(remaining);
        // Choose errata added before the last revision so a "next revision"
        // exists to repeat the claim.
        let mut chosen: Vec<u32> = Vec::new();
        for rev_idx in 0..doc.revisions.len().saturating_sub(1) {
            for &n in &doc.revisions[rev_idx].added {
                if chosen.len() < take {
                    chosen.push(n);
                }
            }
            if chosen.len() >= take {
                break;
            }
        }
        let chosen_len = chosen.len();
        for (i, n) in chosen.into_iter().enumerate() {
            // Repeat the claim in a later revision.
            let later = (i % doc.revisions.len().saturating_sub(1)) + 1;
            doc.revisions[later].added.push(n);
            doc.revisions[later].added.sort_unstable();
            ledger.double_added.push(ErratumId::new(design, n));
        }
        remaining -= chosen_len;
        if remaining == 0 {
            break;
        }
    }
}

/// Errata silently dropped from the revision summary (12 errata / 2 docs).
fn inject_unmentioned(
    spec: &CorpusSpec,
    documents: &mut [ErrataDocument],
    ledger: &mut DefectLedger,
) {
    let docs = defect_docs(spec.defects.unmentioned_docs, 4);
    let per_doc = spec.defects.unmentioned_errata.div_ceil(docs.len().max(1));
    let mut remaining = spec.defects.unmentioned_errata;
    let double_added: Vec<ErratumId> = ledger.double_added.clone();
    for design in docs {
        let doc = &mut documents[design.index()];
        let take = per_doc.min(remaining);
        let mut dropped = 0usize;
        // Drop mentions of errata in the middle of the document so neighbor
        // interpolation has anchors on both sides.
        let numbers: Vec<u32> = doc
            .errata
            .iter()
            .map(|e| e.id.number)
            .filter(|&n| !double_added.contains(&ErratumId::new(design, n)))
            .collect();
        for &n in numbers.iter().skip(numbers.len() / 3) {
            if dropped >= take {
                break;
            }
            let mut was_mentioned = false;
            for rev in &mut doc.revisions {
                let before = rev.added.len();
                rev.added.retain(|&x| x != n);
                was_mentioned |= rev.added.len() != before;
            }
            if was_mentioned {
                ledger.unmentioned.push(ErratumId::new(design, n));
                dropped += 1;
            }
        }
        remaining -= dropped;
        if remaining == 0 {
            break;
        }
    }
}

/// One erratum name denoting two different errata (the AAJ143 case: the
/// collision lives in the Core 1 Desktop document, whose prefix is `AAJ`).
fn inject_name_collision(
    spec: &CorpusSpec,
    documents: &mut [ErrataDocument],
    occs: &mut [Vec<OccRec>],
    _pool: &[BugSeed],
    ledger: &mut DefectLedger,
) {
    if spec.defects.name_collisions == 0 {
        return;
    }
    let design = Design::Intel1D;
    let doc = &mut documents[design.index()];
    if doc.errata.len() < 2 {
        return;
    }
    // Prefer the number 143 when the document is large enough.
    let target_pos = doc
        .errata
        .iter()
        .position(|e| e.id.number == 143)
        .unwrap_or(doc.errata.len() / 3);
    let victim_pos = (target_pos + doc.errata.len() / 2) % doc.errata.len();
    if victim_pos == target_pos {
        return;
    }
    let target_number = doc.errata[target_pos].id.number;
    let old_number = doc.errata[victim_pos].id.number;
    doc.errata[victim_pos].id.number = target_number;
    // Ground truth follows the rename.
    for occ_list in occs.iter_mut() {
        for occ in occ_list.iter_mut() {
            if occ.design == design && occ.number == old_number {
                occ.number = target_number;
            }
        }
    }
    doc.errata.sort_by_key(|e| e.id.number);
    ledger.name_collisions.push((design, target_number));
}

/// Missing or duplicated fields (7 errata / 4 docs).
fn inject_field_defects(
    spec: &CorpusSpec,
    documents: &mut [ErrataDocument],
    ledger: &mut DefectLedger,
) {
    let docs = defect_docs(spec.defects.field_defect_docs, 6);
    let kinds = [
        FieldDefect::MissingImplications,
        FieldDefect::MissingWorkaround,
        FieldDefect::DuplicateWorkaround,
    ];
    let mut injected = 0usize;
    'outer: for (i, design) in docs.iter().cycle().enumerate() {
        if injected >= spec.defects.field_defect_errata {
            break 'outer;
        }
        let doc = &mut documents[design.index()];
        let pos = (i * 7 + 3) % doc.errata.len().max(1);
        let Some(erratum) = doc.errata.get_mut(pos) else {
            continue;
        };
        let id = erratum.id;
        if ledger.field_defects.iter().any(|(e, _)| *e == id) {
            continue;
        }
        let kind = kinds[injected % kinds.len()];
        match kind {
            FieldDefect::MissingImplications => erratum.implications.clear(),
            FieldDefect::MissingWorkaround => erratum.workaround.clear(),
            // Duplication only exists at the page-stream level; the
            // renderer consults the ledger.
            FieldDefect::DuplicateWorkaround => {}
        }
        ledger.field_defects.push((id, kind));
        injected += 1;
        if i > documents.len() * 1000 {
            break;
        }
    }
}

/// Erroneous printed MSR numbers (3 errata / 3 docs).
fn inject_wrong_msr(
    spec: &CorpusSpec,
    pool: &[BugSeed],
    profiles: &[BugProfile],
    occs: &[Vec<OccRec>],
    documents: &mut [ErrataDocument],
    ledger: &mut DefectLedger,
) {
    let mut remaining = spec.defects.wrong_msr_errata;
    let mut used_docs: Vec<Design> = Vec::new();
    for (bug_idx, profile) in profiles.iter().enumerate() {
        if remaining == 0 {
            break;
        }
        let Some(msr) = profile.annotation.msrs.first() else {
            continue;
        };
        // Variant-marked listings rely on body identity for duplicate
        // matching; keep the defect away from them so Intel dedup recall
        // stays structurally perfect (the study matched such pairs by hand).
        if occs[bug_idx].iter().any(|o| o.variant != 0) {
            continue;
        }
        let design = pool[bug_idx].affected[0];
        if used_docs.contains(&design) {
            continue;
        }
        let Some(number) = occs[bug_idx]
            .iter()
            .find(|o| o.design == design)
            .map(|o| o.number)
        else {
            continue;
        };
        let doc = &mut documents[design.index()];
        let good = format!("MSR {:#X}", msr.claimed_address);
        let bad = format!("MSR {:#X}", msr.claimed_address ^ 0x5000);
        // Mutate exactly this bug's own listing.
        if let Some(erratum) = doc
            .errata
            .iter_mut()
            .find(|e| e.id.number == number && e.description.contains(&good))
        {
            erratum.description = erratum.description.replacen(&good, &bad, 1);
            ledger.wrong_msr.push(erratum.id);
            used_docs.push(design);
            remaining -= 1;
        }
    }
}

/// Records the intra-document pairs into the ledger after numbering.
///
/// Called from [`assemble`] indirectly via ground truth: pairs are
/// recoverable as bugs with two occurrences in one design. This helper
/// derives the ledger entries from the occurrence table.
pub(crate) fn ledger_intra_doc_pairs(bugs: &[TrueBug]) -> Vec<(Design, u32, u32)> {
    let mut pairs = Vec::new();
    for bug in bugs {
        for (i, a) in bug.occurrences.iter().enumerate() {
            for b in bug.occurrences.iter().skip(i + 1) {
                if a.design == b.design {
                    pairs.push((a.design, a.number.min(b.number), a.number.max(b.number)));
                }
            }
        }
    }
    pairs.sort_unstable();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> AssembledCorpus {
        assemble(&CorpusSpec::scaled(0.12))
    }

    #[test]
    fn paper_corpus_has_exact_totals() {
        let corpus = assemble(&CorpusSpec::paper());
        let total: usize = corpus.documents.iter().map(|d| d.len()).sum();
        assert_eq!(total, 2_563);
        assert_eq!(corpus.truth.grand_total(), 2_563);
        assert_eq!(corpus.truth.unique_count(Vendor::Intel), 743);
        assert_eq!(corpus.truth.unique_count(Vendor::Amd), 385);
        assert_eq!(corpus.truth.total_count(Vendor::Intel), 2_057);
        assert_eq!(corpus.truth.total_count(Vendor::Amd), 506);
    }

    #[test]
    fn documents_match_ground_truth_occurrences() {
        let corpus = small();
        for doc in &corpus.documents {
            let in_truth = corpus
                .truth
                .bugs
                .iter()
                .flat_map(|b| &b.occurrences)
                .filter(|o| o.design == doc.design)
                .count();
            assert_eq!(doc.len(), in_truth, "{}", doc.design);
        }
    }

    #[test]
    fn intel_numbers_are_sequential_except_collision() {
        let corpus = small();
        for doc in corpus
            .documents
            .iter()
            .filter(|d| d.design.vendor() == Vendor::Intel)
        {
            let mut numbers: Vec<u32> = doc.errata.iter().map(|e| e.id.number).collect();
            numbers.sort_unstable();
            let collisions = corpus
                .truth
                .defects
                .name_collisions
                .iter()
                .filter(|(d, _)| *d == doc.design)
                .count();
            let mut unique = numbers.clone();
            unique.dedup();
            assert_eq!(numbers.len() - unique.len(), collisions, "{}", doc.design);
        }
    }

    #[test]
    fn amd_numbers_are_stable_across_documents() {
        let corpus = small();
        for bug in corpus.truth.bugs.iter().filter(|b| b.vendor == Vendor::Amd) {
            let numbers: std::collections::BTreeSet<u32> =
                bug.occurrences.iter().map(|o| o.number).collect();
            assert_eq!(numbers.len(), 1, "AMD bug {} has mixed numbers", bug.key);
        }
    }

    #[test]
    fn amd_numbers_unique_per_bug() {
        let corpus = small();
        let mut by_number: std::collections::BTreeMap<u32, u32> = Default::default();
        for bug in corpus.truth.bugs.iter().filter(|b| b.vendor == Vendor::Amd) {
            let n = bug.occurrences[0].number;
            if let Some(other) = by_number.insert(n, bug.key.value()) {
                panic!("AMD number {n} used by bugs {other} and {}", bug.key);
            }
        }
    }

    #[test]
    fn defect_counts_match_spec() {
        let spec = CorpusSpec::paper();
        let corpus = assemble(&spec);
        let d = &corpus.truth.defects;
        assert_eq!(d.double_added.len(), spec.defects.double_added_errata);
        assert_eq!(d.unmentioned.len(), spec.defects.unmentioned_errata);
        assert_eq!(d.name_collisions.len(), spec.defects.name_collisions);
        assert_eq!(d.field_defects.len(), spec.defects.field_defect_errata);
        assert_eq!(d.wrong_msr.len(), spec.defects.wrong_msr_errata);
        let pairs = ledger_intra_doc_pairs(&corpus.truth.bugs);
        assert_eq!(pairs.len(), spec.defects.intra_doc_duplicate_pairs);
        let docs: std::collections::BTreeSet<Design> = pairs.iter().map(|(d, _, _)| *d).collect();
        assert_eq!(docs.len(), spec.defects.intra_doc_duplicate_docs);
    }

    #[test]
    fn double_added_numbers_appear_in_two_revisions() {
        let corpus = assemble(&CorpusSpec::paper());
        for id in &corpus.truth.defects.double_added {
            let doc = &corpus.documents[id.design.index()];
            let mentions: usize = doc
                .revisions
                .iter()
                .map(|r| r.added.iter().filter(|&&n| n == id.number).count())
                .sum();
            assert!(mentions >= 2, "{id} mentioned {mentions} times");
        }
    }

    #[test]
    fn unmentioned_numbers_absent_from_revision_logs() {
        let corpus = assemble(&CorpusSpec::paper());
        for id in &corpus.truth.defects.unmentioned {
            let doc = &corpus.documents[id.design.index()];
            assert!(doc.revisions.iter().all(|r| !r.added.contains(&id.number)));
            assert!(doc.erratum(id.number).is_some());
        }
    }

    #[test]
    fn name_collision_is_in_core1_desktop() {
        let corpus = assemble(&CorpusSpec::paper());
        let (design, number) = corpus.truth.defects.name_collisions[0];
        assert_eq!(design, Design::Intel1D);
        let doc = &corpus.documents[design.index()];
        let with_number = doc.errata.iter().filter(|e| e.id.number == number).count();
        assert_eq!(with_number, 2);
    }

    #[test]
    fn wrong_msr_descriptions_are_inconsistent() {
        let corpus = assemble(&CorpusSpec::paper());
        assert_eq!(corpus.truth.defects.wrong_msr.len(), 3);
        for id in &corpus.truth.defects.wrong_msr {
            let doc = &corpus.documents[id.design.index()];
            let erratum = doc
                .errata
                .iter()
                .find(|e| e.id == *id)
                .expect("defective erratum exists");
            // The printed address must not match any canonical register
            // window for the named register.
            assert!(erratum.description.contains("MSR 0x"));
        }
    }

    #[test]
    fn near_duplicates_have_variant_titles() {
        let spec = CorpusSpec::paper();
        let corpus = assemble(&spec);
        let with_variant = corpus
            .truth
            .bugs
            .iter()
            .filter(|b| {
                b.vendor == Vendor::Intel
                    && b.occurrences.len() >= 2
                    && b.occurrences.iter().any(|o| o.title_variant > 0)
                    // Exclude intra-document duplicates (also variant-marked).
                    && {
                        let designs: std::collections::BTreeSet<_> =
                            b.occurrences.iter().map(|o| o.design).collect();
                        designs.len() == b.occurrences.len()
                    }
            })
            .count();
        assert_eq!(with_variant, spec.near_duplicate_pairs);
    }

    #[test]
    fn revisions_cover_all_errata_except_unmentioned() {
        let corpus = small();
        for doc in &corpus.documents {
            let mentioned: std::collections::BTreeSet<u32> = doc
                .revisions
                .iter()
                .flat_map(|r| r.added.iter().copied())
                .collect();
            for e in &doc.errata {
                let is_unmentioned = corpus.truth.defects.unmentioned.contains(&e.id);
                let is_collision_victim = corpus
                    .truth
                    .defects
                    .name_collisions
                    .iter()
                    .any(|(d, n)| *d == e.id.design && *n == e.id.number);
                if !is_unmentioned && !is_collision_victim {
                    assert!(
                        mentioned.contains(&e.id.number),
                        "{} not mentioned in any revision of {}",
                        e.id,
                        doc.design
                    );
                }
            }
        }
    }

    #[test]
    fn assembly_is_deterministic() {
        let spec = CorpusSpec::scaled(0.05);
        let a = assemble(&spec);
        let b = assemble(&spec);
        assert_eq!(a.documents, b.documents);
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn amd_near_miss_pair_exists() {
        let corpus = assemble(&CorpusSpec::paper());
        // Two AMD bugs in the same document with identical descriptions but
        // different workarounds.
        let amd_docs = corpus
            .documents
            .iter()
            .filter(|d| d.design.vendor() == Vendor::Amd);
        let mut found = false;
        for doc in amd_docs {
            for (i, a) in doc.errata.iter().enumerate() {
                for b in doc.errata.iter().skip(i + 1) {
                    if a.description == b.description
                        && a.id.number != b.id.number
                        && a.workaround != b.workaround
                    {
                        found = true;
                    }
                }
            }
        }
        assert!(found, "AMD near-miss pair (a la 1327/1329) missing");
    }
}

#[cfg(test)]
mod title_tests {
    use super::*;
    use rememberr_textkit::normalized_key;

    #[test]
    fn normalized_titles_are_unique_across_bugs() {
        // The Intel dedup rule "identical title => identical erratum" must
        // hold by construction on the full corpus.
        let corpus = assemble(&CorpusSpec::paper());
        let near_miss = corpus.truth.amd_near_miss;
        let mut seen: std::collections::HashMap<String, u32> = Default::default();
        for doc in &corpus.documents {
            for e in &doc.errata {
                let collision = corpus
                    .truth
                    .defects
                    .name_collisions
                    .iter()
                    .any(|(d, n)| *d == e.id.design && *n == e.id.number);
                if collision {
                    continue;
                }
                let Some(bug) = corpus.truth.bug_for_id(e.id) else {
                    continue;
                };
                // The AMD near-miss pair shares a title by design.
                if near_miss.is_some_and(|(a, b)| bug.key == a || bug.key == b) {
                    continue;
                }
                // Skip variant listings (near-duplicates) and the AMD
                // near-miss patch: key on canonical titles only.
                let occ = bug
                    .occurrences
                    .iter()
                    .find(|o| o.id() == e.id)
                    .expect("occurrence");
                if occ.title_variant != 0 {
                    continue;
                }
                let key = normalized_key(&e.title);
                if let Some(&other) = seen.get(&key) {
                    assert_eq!(
                        other,
                        bug.key.value(),
                        "distinct bugs share title {:?}",
                        e.title
                    );
                } else {
                    seen.insert(key, bug.key.value());
                }
            }
        }
    }

    #[test]
    fn same_bug_same_canonical_title_everywhere() {
        let corpus = assemble(&CorpusSpec::scaled(0.1));
        for bug in &corpus.truth.bugs {
            let mut canonical: Option<String> = None;
            for occ in &bug.occurrences {
                if occ.title_variant != 0 {
                    continue;
                }
                // Name-collision numbers retrieve an ambiguous entry.
                let collision = corpus
                    .truth
                    .defects
                    .name_collisions
                    .iter()
                    .any(|(d, n)| *d == occ.design && *n == occ.number);
                if collision {
                    continue;
                }
                let doc = &corpus.documents[occ.design.index()];
                let title = doc
                    .errata
                    .iter()
                    .find(|e| {
                        e.id.number == occ.number && {
                            // Name collisions give two errata the same number;
                            // match on any of them.
                            true
                        }
                    })
                    .map(|e| e.title.clone())
                    .expect("listing exists");
                match &canonical {
                    None => canonical = Some(title),
                    Some(c) => {
                        // Collision victims may retrieve the wrong entry;
                        // tolerate only exact matches or collision numbers.
                        let collision = corpus
                            .truth
                            .defects
                            .name_collisions
                            .iter()
                            .any(|(d, n)| *d == occ.design && *n == occ.number);
                        if !collision {
                            assert_eq!(c, &title, "bug {} retitled", bug.key);
                        }
                    }
                }
            }
        }
    }
}
