//! Scaling properties: every scaled specification generates a corpus whose
//! ground truth matches the spec exactly, and determinism holds per seed.

use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
use rememberr_model::Vendor;

#[test]
fn scaled_corpora_match_their_specs_exactly() {
    for factor in [0.02, 0.05, 0.11, 0.23, 0.4] {
        let spec = CorpusSpec::scaled(factor);
        let corpus = SyntheticCorpus::generate(&spec);
        assert_eq!(
            corpus.truth.unique_count(Vendor::Intel),
            spec.intel_unique,
            "factor {factor}"
        );
        assert_eq!(
            corpus.truth.unique_count(Vendor::Amd),
            spec.amd_unique,
            "factor {factor}"
        );
        assert_eq!(
            corpus.truth.total_count(Vendor::Intel),
            spec.intel_total,
            "factor {factor}"
        );
        assert_eq!(
            corpus.truth.total_count(Vendor::Amd),
            spec.amd_total,
            "factor {factor}"
        );
        // Every rendered document parses back (structure-level invariant is
        // covered by the extract crate; here: non-empty page streams with
        // all three section headings).
        for rendered in &corpus.rendered {
            assert!(rendered.text.contains("REVISION HISTORY"));
            assert!(rendered.text.contains("SUMMARY TABLE OF CHANGES"));
            assert!(rendered.text.contains("ERRATA DETAILS"));
        }
    }
}

#[test]
fn different_seeds_give_different_corpora_with_same_totals() {
    let mut a_spec = CorpusSpec::scaled(0.05);
    let mut b_spec = CorpusSpec::scaled(0.05);
    a_spec.seed = 1;
    b_spec.seed = 2;
    let a = SyntheticCorpus::generate(&a_spec);
    let b = SyntheticCorpus::generate(&b_spec);
    assert_eq!(a.total_errata(), b.total_errata());
    assert_ne!(
        a.rendered.iter().map(|r| r.text.len()).sum::<usize>(),
        b.rendered.iter().map(|r| r.text.len()).sum::<usize>(),
        "different seeds should phrase the corpus differently"
    );
}

#[test]
fn ground_truth_serializes_and_restores() {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.03));
    let json = serde_json::to_string(&corpus.truth).expect("serializes");
    let back: rememberr_docgen::GroundTruth = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, corpus.truth);
}
