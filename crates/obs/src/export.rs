//! Span exporters: Chrome trace-event JSON (loadable in `chrome://tracing`
//! and Perfetto) and an aggregated per-stage profile table.

use std::collections::BTreeMap;

use serde::{Number, Value};

use crate::span::SpanRecord;

/// One flattened span, ready to become a trace event.
struct FlatSpan<'a> {
    record: &'a SpanRecord,
}

fn flatten<'a>(record: &'a SpanRecord, out: &mut Vec<FlatSpan<'a>>) {
    out.push(FlatSpan { record });
    for child in &record.children {
        flatten(child, out);
    }
}

/// Human label for a lane: `main`, `worker-NN`, or `aux-NN`.
#[must_use]
pub fn lane_name(lane: u32) -> String {
    if lane == crate::MAIN_LANE {
        "main".to_string()
    } else if lane < crate::AUX_LANE_BASE {
        format!("worker-{:02}", lane - 1)
    } else {
        format!("aux-{:02}", lane - crate::AUX_LANE_BASE)
    }
}

/// Renders spans as Chrome trace-event JSON.
///
/// The output is one JSON object `{"traceEvents": [...], "displayTimeUnit":
/// "ms"}` containing a `thread_name` metadata event per lane followed by a
/// complete (`"ph": "X"`) event per span with microsecond `ts`/`dur`, so
/// each `par_map` worker renders as its own lane. Span `id`/`parent` ids
/// ride along in `args` for tools that reconstruct the stitched tree.
/// Stitching is not required first — events carry absolute timestamps —
/// but stitched input produces identical events.
#[must_use]
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut flat = Vec::new();
    for record in spans {
        flatten(record, &mut flat);
    }
    // Deterministic event order: by start time, then allocation order.
    flat.sort_by_key(|f| (f.record.start_ns, f.record.id));

    let mut lanes: Vec<u32> = flat.iter().map(|f| f.record.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();

    let mut events: Vec<Value> = Vec::with_capacity(lanes.len() + flat.len());
    for lane in lanes {
        events.push(Value::Object(vec![
            ("ph".to_string(), Value::String("M".to_string())),
            ("name".to_string(), Value::String("thread_name".to_string())),
            ("pid".to_string(), Value::Number(Number::PosInt(1))),
            (
                "tid".to_string(),
                Value::Number(Number::PosInt(u64::from(lane))),
            ),
            (
                "args".to_string(),
                Value::Object(vec![("name".to_string(), Value::String(lane_name(lane)))]),
            ),
        ]));
    }
    for FlatSpan { record } in flat {
        let mut args = vec![("id".to_string(), Value::Number(Number::PosInt(record.id)))];
        if let Some(parent) = record.parent {
            args.push(("parent".to_string(), Value::Number(Number::PosInt(parent))));
        }
        if let Some(detail) = &record.detail {
            args.push(("detail".to_string(), Value::String(detail.clone())));
        }
        events.push(Value::Object(vec![
            ("ph".to_string(), Value::String("X".to_string())),
            ("name".to_string(), Value::String(record.name.clone())),
            ("cat".to_string(), Value::String("rememberr".to_string())),
            ("pid".to_string(), Value::Number(Number::PosInt(1))),
            (
                "tid".to_string(),
                Value::Number(Number::PosInt(u64::from(record.lane))),
            ),
            (
                "ts".to_string(),
                Value::Number(Number::Float(record.start_ns as f64 / 1e3)),
            ),
            (
                "dur".to_string(),
                Value::Number(Number::Float(record.elapsed_ns as f64 / 1e3)),
            ),
            ("args".to_string(), Value::Object(args)),
        ]));
    }
    let doc = Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(events)),
        (
            "displayTimeUnit".to_string(),
            Value::String("ms".to_string()),
        ),
    ]);
    serde_json::to_string(&doc).expect("trace serialization is infallible")
}

/// One aggregated profile row: every span sharing a name, with the time
/// split into *self* (in the span, outside any child) and *child* (inside
/// direct children — summed across lanes, so concurrent children can
/// exceed the parent's wall time).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileRow {
    /// Span name (`stage.noun_verb`).
    pub name: String,
    /// Number of spans aggregated.
    pub calls: u64,
    /// Total wall time across calls.
    pub total_ns: u64,
    /// Time inside direct children.
    pub child_ns: u64,
    /// `total - child`, saturating at zero (concurrent children on other
    /// lanes can out-sum their parent).
    pub self_ns: u64,
}

/// Aggregates a **stitched** span forest into per-name profile rows,
/// sorted by self time (descending, name-ascending on ties). The row set
/// and call counts are deterministic for a fixed workload; only the times
/// vary run to run.
#[must_use]
pub fn profile_rows(spans: &[SpanRecord]) -> Vec<ProfileRow> {
    fn visit(record: &SpanRecord, acc: &mut BTreeMap<String, ProfileRow>) {
        let child_ns: u64 = record
            .children
            .iter()
            .map(|c| c.elapsed_ns)
            .fold(0, u64::saturating_add);
        let row = acc
            .entry(record.name.clone())
            .or_insert_with(|| ProfileRow {
                name: record.name.clone(),
                calls: 0,
                total_ns: 0,
                child_ns: 0,
                self_ns: 0,
            });
        row.calls += 1;
        row.total_ns = row.total_ns.saturating_add(record.elapsed_ns);
        row.child_ns = row.child_ns.saturating_add(child_ns);
        row.self_ns = row
            .self_ns
            .saturating_add(record.elapsed_ns.saturating_sub(child_ns));
        for child in &record.children {
            visit(child, acc);
        }
    }
    let mut acc = BTreeMap::new();
    for record in spans {
        visit(record, &mut acc);
    }
    let mut rows: Vec<ProfileRow> = acc.into_values().collect();
    rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.name.cmp(&b.name)));
    rows
}

/// Total wall time of a stitched forest: the sum of root span durations
/// (the denominator for the profile table's `% of total` column).
#[must_use]
pub fn root_wall_ns(spans: &[SpanRecord]) -> u64 {
    spans
        .iter()
        .map(|r| r.elapsed_ns)
        .fold(0, u64::saturating_add)
}

/// Renders profile rows as an aligned text table with a `self%`-of-total
/// column (`wall_ns` is the denominator, normally [`root_wall_ns`]).
#[must_use]
pub fn render_profile(rows: &[ProfileRow], wall_ns: u64) -> String {
    let name_width = rows
        .iter()
        .map(|r| r.name.len())
        .chain(std::iter::once("span".len()))
        .max()
        .unwrap_or(4);
    let mut out = format!(
        "{:name_width$}  {:>6}  {:>12}  {:>12}  {:>12}  {:>6}\n",
        "span", "calls", "self ms", "child ms", "total ms", "self%"
    );
    for row in rows {
        let pct = if wall_ns == 0 {
            0.0
        } else {
            100.0 * row.self_ns as f64 / wall_ns as f64
        };
        out.push_str(&format!(
            "{:name_width$}  {:>6}  {:>12.3}  {:>12.3}  {:>12.3}  {:>5.1}%\n",
            row.name,
            row.calls,
            row.self_ns as f64 / 1e6,
            row.child_ns as f64 / 1e6,
            row.total_ns as f64 / 1e6,
            pct,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::{exclusive, teardown};

    fn record(
        id: u64,
        name: &str,
        start_ns: u64,
        elapsed_ns: u64,
        lane: u32,
        children: Vec<SpanRecord>,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent: None,
            name: name.to_string(),
            detail: None,
            start_ns,
            elapsed_ns,
            lane,
            children,
        }
    }

    #[test]
    fn chrome_trace_is_valid_trace_event_json() {
        let spans = vec![record(
            1,
            "stage.outer",
            0,
            10_000_000,
            0,
            vec![record(2, "stage.inner", 1_000_000, 2_000_000, 1, vec![])],
        )];
        let json = chrome_trace(&spans);
        let doc: Value = serde_json::from_str(&json).expect("trace parses");
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        // Two lane-name metadata events + two span events.
        assert_eq!(events.len(), 4);
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").and_then(Value::as_str).expect("ph"))
            .collect();
        assert_eq!(phases, ["M", "M", "X", "X"]);
        let lane_names: Vec<&str> = events[..2]
            .iter()
            .map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .unwrap()
            })
            .collect();
        assert_eq!(lane_names, ["main", "worker-00"]);
        for event in &events[2..] {
            assert!(event.get("ts").is_some());
            assert!(event.get("dur").is_some());
            assert!(event.get("tid").is_some());
            assert!(event.get("args").and_then(|a| a.get("id")).is_some());
        }
    }

    #[test]
    fn chrome_trace_events_are_time_ordered() {
        let spans = vec![
            record(7, "stage.late", 5_000, 1_000, 0, vec![]),
            record(3, "stage.early", 1_000, 1_000, 0, vec![]),
        ];
        let json = chrome_trace(&spans);
        let doc: Value = serde_json::from_str(&json).unwrap();
        let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .map(|e| e.get("name").and_then(Value::as_str).unwrap())
            .collect();
        assert_eq!(names, ["stage.early", "stage.late"]);
    }

    #[test]
    fn profile_rows_split_self_and_child_time() {
        let spans = vec![record(
            1,
            "stage.parent",
            0,
            10_000_000,
            0,
            vec![
                record(2, "stage.child", 0, 3_000_000, 0, vec![]),
                record(3, "stage.child", 3_000_000, 1_000_000, 0, vec![]),
            ],
        )];
        let rows = profile_rows(&spans);
        assert_eq!(rows.len(), 2);
        let parent = rows.iter().find(|r| r.name == "stage.parent").unwrap();
        assert_eq!(parent.calls, 1);
        assert_eq!(parent.total_ns, 10_000_000);
        assert_eq!(parent.child_ns, 4_000_000);
        assert_eq!(parent.self_ns, 6_000_000);
        let child = rows.iter().find(|r| r.name == "stage.child").unwrap();
        assert_eq!(child.calls, 2);
        assert_eq!(child.self_ns, 4_000_000);
        // Sorted by self time descending.
        assert_eq!(rows[0].name, "stage.parent");
        assert_eq!(root_wall_ns(&spans), 10_000_000);
    }

    #[test]
    fn concurrent_children_saturate_self_time_at_zero() {
        // Two workers of 8 ms each under a 10 ms parent: child sum exceeds
        // the parent's wall clock, so self time clamps to 0.
        let spans = vec![record(
            1,
            "stage.fanout",
            0,
            10_000_000,
            0,
            vec![
                record(2, "par.worker", 0, 8_000_000, 1, vec![]),
                record(3, "par.worker", 0, 8_000_000, 2, vec![]),
            ],
        )];
        let rows = profile_rows(&spans);
        let parent = rows.iter().find(|r| r.name == "stage.fanout").unwrap();
        assert_eq!(parent.child_ns, 16_000_000);
        assert_eq!(parent.self_ns, 0);
    }

    #[test]
    fn live_spans_export_end_to_end() {
        let _gate = exclusive();
        {
            let _root = crate::span!("test.export_root");
            let _leaf = crate::span!("test.export_leaf");
        }
        let spans = crate::take_spans_stitched();
        let json = chrome_trace(&spans);
        let doc: Value = serde_json::from_str(&json).expect("parses");
        assert!(doc.get("traceEvents").is_some());
        let rows = profile_rows(&spans);
        assert_eq!(rows.len(), 2);
        let table = render_profile(&rows, root_wall_ns(&spans));
        assert!(table.contains("test.export_root"), "{table}");
        assert!(table.contains("self ms"), "{table}");
        teardown();
    }
}
