//! The metrics registry: named monotonic counters and log-scale duration
//! histograms behind one mutex.
//!
//! Counters and histograms are kept in `BTreeMap`s so every snapshot and
//! JSON export iterates in name order — a precondition for the
//! byte-identical counter sections the test suite asserts.

use std::collections::BTreeMap;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// Number of power-of-two duration buckets; bucket `i` counts observations
/// with `floor(log2(ns)) == i` (bucket 0 also takes `ns == 0`).
pub const BUCKETS: usize = 64;

/// Compile-time guard that the bucket math and the advertised bucket count
/// agree (`bucket_index` maps into `0..BUCKETS`).
const _: () = assert!(BUCKETS == u64::BITS as usize);

struct Registry {
    counters: BTreeMap<&'static str, u64>,
    durations: BTreeMap<&'static str, Histogram>,
    workers: BTreeMap<String, WorkerStats>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    counters: BTreeMap::new(),
    durations: BTreeMap::new(),
    workers: BTreeMap::new(),
});

fn registry() -> std::sync::MutexGuard<'static, Registry> {
    REGISTRY
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

pub(crate) fn add_counter(name: &'static str, delta: u64) {
    let mut reg = registry();
    let slot = reg.counters.entry(name).or_insert(0);
    *slot = slot.saturating_add(delta);
}

pub(crate) fn add_duration(name: &'static str, nanos: u64) {
    let mut reg = registry();
    reg.durations.entry(name).or_default().record(nanos);
}

pub(crate) fn add_worker(index: usize, busy_ns: u64, tasks: u64) {
    let mut reg = registry();
    let stats = reg.workers.entry(format!("w{index:02}")).or_default();
    stats.busy_ns = stats.busy_ns.saturating_add(busy_ns);
    stats.tasks = stats.tasks.saturating_add(tasks);
}

pub(crate) fn snapshot() -> Snapshot {
    let reg = registry();
    Snapshot {
        counters: reg
            .counters
            .iter()
            .map(|(name, value)| ((*name).to_string(), *value))
            .collect(),
        durations: reg
            .durations
            .iter()
            .map(|(name, histogram)| ((*name).to_string(), histogram.clone()))
            .collect(),
        par: reg.workers.clone(),
    }
}

pub(crate) fn reset() {
    let mut reg = registry();
    reg.counters.clear();
    reg.durations.clear();
    reg.workers.clear();
}

/// A log-scale histogram of durations in nanoseconds.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Observation count.
    pub count: u64,
    /// Sum of all observations, saturating.
    pub total_ns: u64,
    /// Smallest observation (0 when empty).
    pub min_ns: u64,
    /// Largest observation.
    pub max_ns: u64,
    /// Sparse buckets as `(bucket_index, count)`, index-ascending; bucket
    /// `i` holds observations in `[2^i, 2^(i+1))` (index 0 also takes 0).
    pub buckets: Vec<(u8, u64)>,
}

/// Bucket index for one observation.
#[must_use]
pub(crate) fn bucket_index(nanos: u64) -> u8 {
    if nanos == 0 {
        0
    } else {
        (63 - nanos.leading_zeros()) as u8
    }
}

impl Histogram {
    /// Adds one observation.
    pub fn record(&mut self, nanos: u64) {
        if self.count == 0 || nanos < self.min_ns {
            self.min_ns = nanos;
        }
        if nanos > self.max_ns {
            self.max_ns = nanos;
        }
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(nanos);
        let index = bucket_index(nanos);
        match self.buckets.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += 1,
            Err(pos) => self.buckets.insert(pos, (index, 1)),
        }
    }

    /// Mean observation in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate quantile in nanoseconds from the log-scale buckets.
    ///
    /// Walks the cumulative bucket counts until `q` of the observations
    /// are covered and reports that bucket's upper bound `2^(i+1) - 1`,
    /// clamped into `[min_ns, max_ns]` — a deterministic upper estimate
    /// with factor-of-two resolution, which is what a latency endpoint
    /// needs (`p50`/`p99` to the right order of magnitude, no sample
    /// retention). Out-of-range `q` clamps; an empty histogram reports 0.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * count), at least 1: the rank of the target observation.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(index, count) in &self.buckets {
            seen += count;
            if seen >= rank {
                let upper = match index {
                    63 => u64::MAX,
                    i => (1u64 << (i + 1)) - 1,
                };
                return upper.clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }
}

/// Wall-clock utilization of one `par_map` worker slot, accumulated
/// across every parallel call in the run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Nanoseconds the worker slot spent executing (spawn to finish).
    pub busy_ns: u64,
    /// Items the worker slot processed.
    pub tasks: u64,
}

/// A point-in-time copy of the registry, JSON-exportable.
///
/// The `counters` section is deterministic for a fixed input and seed;
/// `durations` and `par` are wall-clock and vary run to run. Consumers
/// comparing runs must compare `counters` only — that is why the sections
/// live in separate top-level JSON keys.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Deterministic event counts, name-ascending.
    pub counters: BTreeMap<String, u64>,
    /// Nondeterministic duration histograms, name-ascending.
    pub durations: BTreeMap<String, Histogram>,
    /// Per-worker utilization (`w00`, `w01`, …), wall clock like
    /// `durations`; empty on sequential runs and in snapshots written
    /// before this section existed.
    #[serde(default)]
    pub par: BTreeMap<String, WorkerStats>,
}

impl Snapshot {
    /// Pretty JSON with `counters` and `durations` as separate sections.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization is infallible")
    }

    /// The deterministic section alone, as compact JSON — byte-identical
    /// across identically seeded runs.
    #[must_use]
    pub fn counters_json(&self) -> String {
        serde_json::to_string(&self.counters).expect("counter serialization is infallible")
    }

    /// Worker busy-time imbalance: the busiest worker's `busy_ns` over the
    /// least busy one's. `1.0` is perfectly balanced; `None` when fewer
    /// than two workers reported or the minimum is zero.
    #[must_use]
    pub fn worker_imbalance(&self) -> Option<f64> {
        if self.par.len() < 2 {
            return None;
        }
        let max = self.par.values().map(|w| w.busy_ns).max()?;
        let min = self.par.values().map(|w| w.busy_ns).min()?;
        (min > 0).then(|| max as f64 / min as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::{exclusive, teardown};

    #[test]
    fn counters_accumulate_and_snapshot_in_name_order() {
        let _gate = exclusive();
        crate::count("z.last", 1);
        crate::count("a.first", 2);
        crate::count("a.first", 3);
        let snap = crate::snapshot();
        let names: Vec<&str> = snap.counters.keys().map(String::as_str).collect();
        assert_eq!(names, ["a.first", "z.last"]);
        assert_eq!(snap.counters["a.first"], 5);
        assert_eq!(snap.counters["z.last"], 1);
        teardown();
    }

    #[test]
    fn histogram_bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(7), 2);
        assert_eq!(bucket_index(8), 3);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let mut h = Histogram::default();
        for ns in [5, 3, 900, 3] {
            h.record(ns);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.total_ns, 911);
        assert_eq!(h.min_ns, 3);
        assert_eq!(h.max_ns, 900);
        assert_eq!(h.mean_ns(), 227);
        // 3 and 3 share bucket 1, 5 is bucket 2, 900 is bucket 9.
        assert_eq!(h.buckets, vec![(1, 2), (2, 1), (9, 1)]);
    }

    #[test]
    fn histogram_quantiles_walk_buckets_and_clamp_to_observed_range() {
        let empty = Histogram::default();
        assert_eq!(empty.quantile_ns(0.5), 0);

        let mut h = Histogram::default();
        for ns in [5, 3, 900, 3] {
            h.record(ns);
        }
        // Ranks 1-2 land in bucket 1 (upper bound 3), rank 3 in bucket 2
        // (upper bound 7), rank 4 in bucket 9 — clamped to max_ns.
        assert_eq!(h.quantile_ns(0.25), 3);
        assert_eq!(h.quantile_ns(0.50), 3);
        assert_eq!(h.quantile_ns(0.75), 7);
        assert_eq!(h.quantile_ns(0.99), 900);
        assert_eq!(h.quantile_ns(1.0), 900);
        // Out-of-range q clamps instead of panicking.
        assert_eq!(h.quantile_ns(-1.0), 3);
        assert_eq!(h.quantile_ns(2.0), 900);

        // A single observation answers every quantile with itself: the
        // bucket upper bound clamps into [min_ns, max_ns].
        let mut one = Histogram::default();
        one.record(1_000);
        assert_eq!(one.quantile_ns(0.01), 1_000);
        assert_eq!(one.quantile_ns(0.99), 1_000);
    }

    #[test]
    fn counter_section_is_deterministic_across_identical_runs() {
        let _gate = exclusive();
        let run = || {
            crate::reset();
            // Same logical event stream, interleaved differently with
            // durations — durations must not leak into the counter section.
            crate::count("dedup.comparisons_made", 40);
            crate::record_ns("dedup.assign_keys", 123_456);
            crate::count("extract.pages_scanned", 7);
            crate::count("dedup.comparisons_made", 2);
            crate::snapshot().counters_json()
        };
        let first = run();
        let second = run();
        assert_eq!(first, second);
        assert!(first.contains("\"dedup.comparisons_made\":42"));
        teardown();
    }

    #[test]
    fn worker_stats_accumulate_and_stay_out_of_counters() {
        let _gate = exclusive();
        crate::record_worker(0, 4_000, 10);
        crate::record_worker(1, 1_000, 2);
        crate::record_worker(0, 2_000, 5);
        let snap = crate::snapshot();
        assert_eq!(snap.par["w00"].busy_ns, 6_000);
        assert_eq!(snap.par["w00"].tasks, 15);
        assert_eq!(snap.par["w01"].busy_ns, 1_000);
        assert!(snap.counters.is_empty(), "{:?}", snap.counters);
        assert_eq!(snap.worker_imbalance(), Some(6.0));
        // Round trip keeps the section; counters_json ignores it.
        let parsed: Snapshot = serde_json::from_str(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(snap.counters_json(), "{}");
        teardown();
    }

    #[test]
    fn snapshots_without_a_par_section_still_parse() {
        let text = r#"{"counters":{"a.b":1},"durations":{}}"#;
        let snap: Snapshot = serde_json::from_str(text).expect("legacy snapshot parses");
        assert!(snap.par.is_empty());
        assert_eq!(snap.worker_imbalance(), None);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let _gate = exclusive();
        crate::count("classify.rules_fired", 11);
        crate::record_ns("analysis.figure", 2_048);
        crate::record_ns("analysis.figure", 4_096);
        let snap = crate::snapshot();
        let parsed: Snapshot = serde_json::from_str(&snap.to_json()).expect("valid JSON");
        assert_eq!(parsed, snap);
        assert_eq!(parsed.durations["analysis.figure"].count, 2);
        teardown();
    }
}
