//! Hierarchical tracing spans: RAII guards that time a region, nest via a
//! thread-local stack, and publish completed root spans to a global
//! collector for text-tree or JSON rendering.

use std::cell::RefCell;
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// One completed span with its timed children.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// The static span name (`stage.noun_verb`).
    pub name: String,
    /// Optional per-instance detail, e.g. a document or figure label.
    pub detail: Option<String>,
    /// Wall-clock duration, monotonic-clock nanoseconds.
    pub elapsed_ns: u64,
    /// Completed child spans, in completion order.
    pub children: Vec<SpanRecord>,
}

/// An in-progress span on the thread-local stack.
struct Frame {
    name: &'static str,
    detail: Option<String>,
    start: Instant,
    children: Vec<SpanRecord>,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Completed root spans from all threads, in completion order.
static COMPLETED: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

fn completed() -> std::sync::MutexGuard<'static, Vec<SpanRecord>> {
    COMPLETED
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// RAII guard returned by [`span`]; closing (dropping) it records the
/// elapsed time. Guards must close in reverse opening order (the natural
/// order for scope-bound guards).
#[must_use = "a span measures the scope holding the guard; dropping it immediately measures nothing"]
pub struct Span {
    /// Stack depth at open; `usize::MAX` marks a disabled no-op guard.
    depth: usize,
}

/// Opens a span. While collection is disabled this is a no-op returning an
/// inert guard.
pub fn span(name: &'static str) -> Span {
    open(name, None)
}

/// Opens a span with a per-instance detail string (used by the `span!`
/// macro's formatting arm).
pub fn span_with_detail(name: &'static str, detail: String) -> Span {
    open(name, Some(detail))
}

fn open(name: &'static str, detail: Option<String>) -> Span {
    if !crate::is_enabled() {
        return Span { depth: usize::MAX };
    }
    let depth = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(Frame {
            name,
            detail,
            start: Instant::now(),
            children: Vec::new(),
        });
        stack.len() - 1
    });
    Span { depth }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.depth == usize::MAX {
            return;
        }
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Defensive: close any frames opened after this one that were
            // leaked rather than dropped (they become children).
            while stack.len() > self.depth {
                let frame = stack.pop().expect("stack holds this span's frame");
                let elapsed_ns =
                    u64::try_from(frame.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                crate::record_ns(frame.name, elapsed_ns);
                let record = SpanRecord {
                    name: frame.name.to_string(),
                    detail: frame.detail,
                    elapsed_ns,
                    children: frame.children,
                };
                match stack.last_mut() {
                    Some(parent) => parent.children.push(record),
                    None => completed().push(record),
                }
            }
        });
    }
}

/// Opens a span guard: `span!("extract.document")`, or with a formatted
/// detail label, `span!("analysis.figure", "fig{:02}", n)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($detail:tt)+) => {
        $crate::span_with_detail($name, format!($($detail)+))
    };
}

/// Removes and returns all completed root spans (completion order).
#[must_use]
pub fn take_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *completed())
}

/// Renders completed root spans as an indented text tree with millisecond
/// timings. Does not consume the spans.
#[must_use]
pub fn render_trace() -> String {
    let mut out = String::new();
    for record in completed().iter() {
        render_into(record, 0, &mut out);
    }
    out
}

fn render_into(record: &SpanRecord, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(&record.name);
    if let Some(detail) = &record.detail {
        out.push_str(" [");
        out.push_str(detail);
        out.push(']');
    }
    let ms = record.elapsed_ns as f64 / 1_000_000.0;
    out.push_str(&format!(" — {ms:.3} ms\n"));
    for child in &record.children {
        render_into(child, depth + 1, out);
    }
}

pub(crate) fn reset() {
    completed().clear();
    STACK.with(|stack| stack.borrow_mut().clear());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::{exclusive, teardown};

    #[test]
    fn spans_nest_and_preserve_order() {
        let _gate = exclusive();
        {
            let _root = crate::span!("test.root");
            {
                let _first = crate::span!("test.first");
            }
            {
                let _second = crate::span!("test.second", "doc {}", 3);
            }
        }
        let spans = take_spans();
        assert_eq!(spans.len(), 1);
        let root = &spans[0];
        assert_eq!(root.name, "test.root");
        let child_names: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(child_names, ["test.first", "test.second"]);
        assert_eq!(root.children[1].detail.as_deref(), Some("doc 3"));
        // A parent's time covers its children.
        assert!(root.elapsed_ns >= root.children.iter().map(|c| c.elapsed_ns).sum::<u64>());
        teardown();
    }

    #[test]
    fn span_durations_feed_the_histogram_registry() {
        let _gate = exclusive();
        {
            let _span = crate::span!("test.timed");
        }
        let snap = crate::snapshot();
        assert_eq!(snap.durations["test.timed"].count, 1);
        // Spans record durations, never counters.
        assert!(snap.counters.is_empty());
        teardown();
    }

    #[test]
    fn trace_tree_renders_with_indentation() {
        let _gate = exclusive();
        {
            let _outer = crate::span!("test.outer");
            let _inner = crate::span!("test.inner");
        }
        let tree = render_trace();
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("test.outer — "));
        assert!(lines[1].starts_with("  test.inner — "));
        // Rendering does not consume.
        assert_eq!(take_spans().len(), 1);
        teardown();
    }

    #[test]
    fn span_records_round_trip_through_json() {
        let _gate = exclusive();
        {
            let _root = crate::span!("test.json", "case");
            let _leaf = crate::span!("test.leaf");
        }
        let spans = take_spans();
        let text = serde_json::to_string(&spans).expect("serializes");
        let parsed: Vec<SpanRecord> = serde_json::from_str(&text).expect("parses");
        assert_eq!(parsed, spans);
        teardown();
    }
}
