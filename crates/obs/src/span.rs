//! Hierarchical tracing spans: RAII guards that time a region, nest via a
//! thread-local stack, and publish completed root spans to a global
//! collector for text-tree, profile-table, or Chrome-trace rendering.
//!
//! # Cross-thread stitching
//!
//! Every span gets a process-unique `id` and records the `id` of its
//! parent. Same-thread nesting is structural (children live inside their
//! parent's `children` vector). Work that hops threads — `par_map` workers,
//! `join` lanes — opens a [`worker_scope`]/[`aux_scope`] on the new thread
//! carrying the *spawning* span's id; spans completed there become roots in
//! the global collector tagged with that parent id, and [`stitch_spans`]
//! re-homes them under the spawning span afterwards. The scope guard also
//! flushes any frames still open when the thread's work ends, so a leaked
//! guard loses timing precision, never whole subtrees.
//!
//! # Lanes
//!
//! Each span records the `lane` it ran on: `0` is the spawning/main
//! thread, `1..=N` are `par_map` worker slots (stable across calls, so a
//! Chrome trace shows one lane per worker), and lanes from
//! [`AUX_LANE_BASE`] up are short-lived `join` threads (allocated from a
//! free pool so they stay dense).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Lane of the spawning/main thread.
pub const MAIN_LANE: u32 = 0;

/// First lane used for auxiliary (`join`) threads; `par_map` worker lanes
/// sit in `1..AUX_LANE_BASE`.
pub const AUX_LANE_BASE: u32 = 1_000;

/// The lane of `par_map` worker slot `index` (slot 0 → lane 1; lane 0 is
/// the spawning thread).
#[must_use]
pub fn worker_lane(index: usize) -> u32 {
    u32::try_from(index + 1).unwrap_or(AUX_LANE_BASE - 1)
}

/// One completed span with its timed children.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Process-unique span id (allocation order).
    pub id: u64,
    /// Id of the enclosing span: the structural parent for same-thread
    /// nesting, or the adopted spawning span for worker/aux roots.
    pub parent: Option<u64>,
    /// The static span name (`stage.noun_verb`).
    pub name: String,
    /// Optional per-instance detail, e.g. a document or figure label.
    pub detail: Option<String>,
    /// Start time, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Wall-clock duration, monotonic-clock nanoseconds.
    pub elapsed_ns: u64,
    /// Lane (thread slot) the span ran on; see the module docs.
    pub lane: u32,
    /// Completed child spans, in completion order ([`stitch_spans`]
    /// re-sorts by start time).
    pub children: Vec<SpanRecord>,
}

/// An in-progress span on the thread-local stack.
struct Frame {
    id: u64,
    name: &'static str,
    detail: Option<String>,
    start: Instant,
    start_ns: u64,
    children: Vec<SpanRecord>,
}

/// Per-thread span context: the open-frame stack plus the lane and adopted
/// parent installed by [`worker_scope`]/[`aux_scope`].
struct ThreadCtx {
    stack: Vec<Frame>,
    lane: u32,
    inherited: Option<u64>,
}

thread_local! {
    static CTX: RefCell<ThreadCtx> = const {
        RefCell::new(ThreadCtx { stack: Vec::new(), lane: MAIN_LANE, inherited: None })
    };
}

/// Completed root spans from all threads, in completion order.
static COMPLETED: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

/// Monotonic span-id source (0 is reserved as "no id").
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// The process trace epoch: all `start_ns` values are relative to this.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Released aux lanes available for reuse, plus the next fresh one.
static AUX_POOL: Mutex<Vec<u32>> = Mutex::new(Vec::new());
static NEXT_AUX: AtomicU32 = AtomicU32::new(AUX_LANE_BASE);

fn completed() -> std::sync::MutexGuard<'static, Vec<SpanRecord>> {
    COMPLETED
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// RAII guard returned by [`span`]; closing (dropping) it records the
/// elapsed time. Guards must close in reverse opening order (the natural
/// order for scope-bound guards).
#[must_use = "a span measures the scope holding the guard; dropping it immediately measures nothing"]
pub struct Span {
    /// Stack depth at open; `usize::MAX` marks a disabled no-op guard.
    depth: usize,
}

/// Opens a span. While collection is disabled this is a no-op returning an
/// inert guard.
pub fn span(name: &'static str) -> Span {
    open(name, None)
}

/// Opens a span with a per-instance detail string (used by the `span!`
/// macro's formatting arm).
pub fn span_with_detail(name: &'static str, detail: String) -> Span {
    open(name, Some(detail))
}

fn open(name: &'static str, detail: Option<String>) -> Span {
    if !crate::is_enabled() {
        return Span { depth: usize::MAX };
    }
    let start_ns = now_ns();
    let depth = CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        ctx.stack.push(Frame {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            name,
            detail,
            start: Instant::now(),
            start_ns,
            children: Vec::new(),
        });
        ctx.stack.len() - 1
    });
    Span { depth }
}

/// The id of the innermost open span on this thread, falling back to the
/// parent adopted from a spawning thread. `None` while collection is off
/// or outside any span. `par`/`join` capture this before spawning so work
/// on other threads stitches under the span that fanned it out.
#[must_use]
pub fn current_span_id() -> Option<u64> {
    if !crate::is_enabled() {
        return None;
    }
    CTX.with(|ctx| {
        let ctx = ctx.borrow();
        ctx.stack.last().map(|f| f.id).or(ctx.inherited)
    })
}

/// Closes every frame above `base_depth` on this thread, publishing the
/// records (shared by [`Span::drop`] and scope-guard flushing).
fn close_frames_above(ctx: &mut ThreadCtx, base_depth: usize) {
    while ctx.stack.len() > base_depth {
        let frame = ctx.stack.pop().expect("stack holds frames above base");
        let elapsed_ns = u64::try_from(frame.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        crate::record_ns(frame.name, elapsed_ns);
        let parent = ctx.stack.last().map(|f| f.id).or(ctx.inherited);
        let record = SpanRecord {
            id: frame.id,
            parent,
            name: frame.name.to_string(),
            detail: frame.detail,
            start_ns: frame.start_ns,
            elapsed_ns,
            lane: ctx.lane,
            children: frame.children,
        };
        match ctx.stack.last_mut() {
            Some(parent_frame) => parent_frame.children.push(record),
            // Root spans normally publish to the collector; with span
            // retention off (long-running servers) the record is dropped —
            // its duration was already fed to the histogram above.
            None if crate::spans_retained() => completed().push(record),
            None => {}
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.depth == usize::MAX {
            return;
        }
        CTX.with(|ctx| {
            // Defensive: frames opened after this one that were leaked
            // rather than dropped are closed here (they become children).
            close_frames_above(&mut ctx.borrow_mut(), self.depth);
        });
    }
}

/// RAII guard installed on a worker/aux thread for the duration of its
/// borrowed work; see [`worker_scope`] and [`aux_scope`].
#[must_use = "the scope guard stitches and flushes this thread's spans when dropped"]
pub struct ScopeGuard {
    prev_lane: u32,
    prev_inherited: Option<u64>,
    base_depth: usize,
    /// Aux lane to return to the pool on drop, if one was allocated.
    aux_lane: Option<u32>,
    active: bool,
}

/// Enters a `par_map` worker scope on the current thread: spans opened
/// here record `lane`, and spans completing at this thread's top level are
/// tagged with `parent` (the spawning span's id) so [`stitch_spans`] can
/// re-home them. Dropping the guard **flushes** any frames still open —
/// a span leaked on a worker is force-closed and published rather than
/// silently discarded with the thread's stack.
pub fn worker_scope(lane: u32, parent: Option<u64>) -> ScopeGuard {
    enter_scope(Some(lane), parent)
}

/// Like [`worker_scope`] for short-lived `join` threads: the lane is
/// allocated from a dense reusable pool starting at [`AUX_LANE_BASE`] and
/// returned when the guard drops.
pub fn aux_scope(parent: Option<u64>) -> ScopeGuard {
    enter_scope(None, parent)
}

fn enter_scope(lane: Option<u32>, parent: Option<u64>) -> ScopeGuard {
    if !crate::is_enabled() {
        return ScopeGuard {
            prev_lane: MAIN_LANE,
            prev_inherited: None,
            base_depth: 0,
            aux_lane: None,
            active: false,
        };
    }
    let (lane, aux_lane) = match lane {
        Some(lane) => (lane, None),
        None => {
            let lane = {
                let mut pool = AUX_POOL.lock().unwrap_or_else(|p| p.into_inner());
                pool.pop()
                    .unwrap_or_else(|| NEXT_AUX.fetch_add(1, Ordering::Relaxed))
            };
            (lane, Some(lane))
        }
    };
    CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        let guard = ScopeGuard {
            prev_lane: ctx.lane,
            prev_inherited: ctx.inherited,
            base_depth: ctx.stack.len(),
            aux_lane,
            active: true,
        };
        ctx.lane = lane;
        ctx.inherited = parent;
        guard
    })
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            // Flush: anything still open when the scope ends is closed and
            // published now, while the lane and adopted parent are intact.
            close_frames_above(&mut ctx, self.base_depth);
            ctx.lane = self.prev_lane;
            ctx.inherited = self.prev_inherited;
        });
        if let Some(lane) = self.aux_lane {
            AUX_POOL
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(lane);
        }
    }
}

/// Opens a span guard: `span!("extract.document")`, or with a formatted
/// detail label, `span!("analysis.figure", "fig{:02}", n)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($detail:tt)+) => {
        $crate::span_with_detail($name, format!($($detail)+))
    };
}

/// Removes and returns all completed root spans (completion order, not
/// stitched — worker/aux roots still float free; see [`stitch_spans`]).
#[must_use]
pub fn take_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *completed())
}

/// A copy of all completed root spans without consuming them.
#[must_use]
pub fn completed_spans() -> Vec<SpanRecord> {
    completed().clone()
}

/// Re-homes cross-thread roots under their spawning spans.
///
/// Any root whose `parent` id exists elsewhere in the forest is moved into
/// that span's `children`; roots whose parent never completed (or was
/// `None`) stay roots. Children are then sorted by `(start_ns, id)`, which
/// keeps same-thread siblings in program order and gives worker spans a
/// deterministic position independent of completion order.
#[must_use]
pub fn stitch_spans(mut roots: Vec<SpanRecord>) -> Vec<SpanRecord> {
    fn contains(record: &SpanRecord, id: u64) -> bool {
        record.id == id || record.children.iter().any(|c| contains(c, id))
    }
    fn find_mut(record: &mut SpanRecord, id: u64) -> Option<&mut SpanRecord> {
        if record.id == id {
            return Some(record);
        }
        record.children.iter_mut().find_map(|c| find_mut(c, id))
    }
    fn sort_children(record: &mut SpanRecord) {
        record.children.sort_by_key(|c| (c.start_ns, c.id));
        for child in &mut record.children {
            sort_children(child);
        }
    }

    // Fixpoint: an orphan's parent may itself be an orphan stitched on a
    // later pass (nested fan-out), so repeat until nothing moves.
    loop {
        let mut moved = false;
        let mut i = 0;
        while i < roots.len() {
            let stitchable = roots[i].parent.is_some_and(|pid| {
                roots
                    .iter()
                    .enumerate()
                    .any(|(j, r)| j != i && contains(r, pid))
            });
            if stitchable {
                let orphan = roots.remove(i);
                let pid = orphan.parent.expect("stitchable implies a parent id");
                let home = roots
                    .iter_mut()
                    .find_map(|r| find_mut(r, pid))
                    .expect("parent located above");
                home.children.push(orphan);
                moved = true;
            } else {
                i += 1;
            }
        }
        if !moved {
            break;
        }
    }
    roots.sort_by_key(|r| (r.start_ns, r.id));
    for root in &mut roots {
        sort_children(root);
    }
    roots
}

/// Removes all completed spans and returns them stitched.
#[must_use]
pub fn take_spans_stitched() -> Vec<SpanRecord> {
    stitch_spans(take_spans())
}

/// Renders completed root spans (stitched) as an indented text tree with
/// millisecond timings. Does not consume the spans.
#[must_use]
pub fn render_trace() -> String {
    let spans = stitch_spans(completed_spans());
    let mut out = String::new();
    for record in &spans {
        render_into(record, 0, &mut out);
    }
    out
}

fn render_into(record: &SpanRecord, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(&record.name);
    if let Some(detail) = &record.detail {
        out.push_str(" [");
        out.push_str(detail);
        out.push(']');
    }
    let ms = record.elapsed_ns as f64 / 1_000_000.0;
    out.push_str(&format!(" — {ms:.3} ms\n"));
    for child in &record.children {
        render_into(child, depth + 1, out);
    }
}

pub(crate) fn reset() {
    completed().clear();
    CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        ctx.stack.clear();
        ctx.inherited = None;
        ctx.lane = MAIN_LANE;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::{exclusive, teardown};

    #[test]
    fn spans_nest_and_preserve_order() {
        let _gate = exclusive();
        {
            let _root = crate::span!("test.root");
            {
                let _first = crate::span!("test.first");
            }
            {
                let _second = crate::span!("test.second", "doc {}", 3);
            }
        }
        let spans = take_spans();
        assert_eq!(spans.len(), 1);
        let root = &spans[0];
        assert_eq!(root.name, "test.root");
        let child_names: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(child_names, ["test.first", "test.second"]);
        assert_eq!(root.children[1].detail.as_deref(), Some("doc 3"));
        // A parent's time covers its children.
        assert!(root.elapsed_ns >= root.children.iter().map(|c| c.elapsed_ns).sum::<u64>());
        // Structural children record their parent's id and the same lane.
        assert!(root.children.iter().all(|c| c.parent == Some(root.id)));
        assert!(root.children.iter().all(|c| c.lane == MAIN_LANE));
        teardown();
    }

    #[test]
    fn span_durations_feed_the_histogram_registry() {
        let _gate = exclusive();
        {
            let _span = crate::span!("test.timed");
        }
        let snap = crate::snapshot();
        assert_eq!(snap.durations["test.timed"].count, 1);
        // Spans record durations, never counters.
        assert!(snap.counters.is_empty());
        teardown();
    }

    #[test]
    fn trace_tree_renders_with_indentation() {
        let _gate = exclusive();
        {
            let _outer = crate::span!("test.outer");
            let _inner = crate::span!("test.inner");
        }
        let tree = render_trace();
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("test.outer — "));
        assert!(lines[1].starts_with("  test.inner — "));
        // Rendering does not consume.
        assert_eq!(take_spans().len(), 1);
        teardown();
    }

    #[test]
    fn span_records_round_trip_through_json() {
        let _gate = exclusive();
        {
            let _root = crate::span!("test.json", "case");
            let _leaf = crate::span!("test.leaf");
        }
        let spans = take_spans();
        let text = serde_json::to_string(&spans).expect("serializes");
        let parsed: Vec<SpanRecord> = serde_json::from_str(&text).expect("parses");
        assert_eq!(parsed, spans);
        teardown();
    }

    #[test]
    fn worker_roots_stitch_under_the_spawning_span() {
        let _gate = exclusive();
        let spawner_id;
        {
            let _root = crate::span!("test.spawner");
            spawner_id = current_span_id().expect("span is open");
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _scope = worker_scope(worker_lane(0), Some(spawner_id));
                    let _span = crate::span!("test.worker_task");
                });
            });
        }
        let spans = stitch_spans(take_spans());
        assert_eq!(spans.len(), 1, "worker root was not stitched: {spans:?}");
        let root = &spans[0];
        assert_eq!(root.name, "test.spawner");
        assert_eq!(root.children.len(), 1);
        let worker = &root.children[0];
        assert_eq!(worker.name, "test.worker_task");
        assert_eq!(worker.parent, Some(spawner_id));
        assert_eq!(worker.lane, worker_lane(0));
        teardown();
    }

    #[test]
    fn scope_exit_flushes_leaked_worker_frames() {
        let _gate = exclusive();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let guard = worker_scope(worker_lane(2), None);
                let leaked = crate::span!("test.leaked_parent");
                {
                    let _child = crate::span!("test.completed_child");
                }
                // The guard never drops — without the scope flush, the
                // frame and its completed child would vanish with the
                // thread-local stack.
                std::mem::forget(leaked);
                drop(guard);
            });
        });
        let spans = take_spans();
        assert_eq!(spans.len(), 1, "leaked frame was discarded: {spans:?}");
        assert_eq!(spans[0].name, "test.leaked_parent");
        assert_eq!(spans[0].lane, worker_lane(2));
        assert_eq!(spans[0].children.len(), 1);
        assert_eq!(spans[0].children[0].name, "test.completed_child");
        teardown();
    }

    #[test]
    fn nested_fanout_stitches_through_intermediate_orphans() {
        let _gate = exclusive();
        let root_id;
        {
            let _root = crate::span!("test.outer_stage");
            root_id = current_span_id().unwrap();
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _scope = worker_scope(worker_lane(0), Some(root_id));
                    let _w = crate::span!("test.mid_worker");
                    let mid_id = current_span_id().unwrap();
                    std::thread::scope(|inner| {
                        inner.spawn(move || {
                            let _scope = worker_scope(worker_lane(1), Some(mid_id));
                            let _s = crate::span!("test.inner_task");
                        });
                    });
                });
            });
        }
        let spans = stitch_spans(take_spans());
        assert_eq!(spans.len(), 1, "{spans:?}");
        let mid = &spans[0].children[0];
        assert_eq!(mid.name, "test.mid_worker");
        assert_eq!(mid.children[0].name, "test.inner_task");
        teardown();
    }

    #[test]
    fn aux_scopes_reuse_pooled_lanes() {
        let _gate = exclusive();
        std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _scope = aux_scope(None);
                    let _s = crate::span!("test.aux_a");
                })
                .join()
                .unwrap();
            scope
                .spawn(|| {
                    let _scope = aux_scope(None);
                    let _s = crate::span!("test.aux_b");
                })
                .join()
                .unwrap();
        });
        let spans = take_spans();
        assert_eq!(spans.len(), 2);
        // The second aux thread ran after the first released its lane, so
        // both use the same pooled lane.
        assert_eq!(spans[0].lane, spans[1].lane);
        assert!(spans[0].lane >= AUX_LANE_BASE);
        teardown();
    }
}
