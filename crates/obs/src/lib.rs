//! Observability for the RemembERR pipeline: hierarchical tracing spans
//! and a process-global metrics registry.
//!
//! # Design
//!
//! * **Disabled by default.** Every entry point checks one relaxed atomic
//!   and returns immediately when collection is off, so instrumented hot
//!   paths (similarity comparisons, page scans) pay only a load+branch.
//!   [`enable`] turns collection on; the CLI does this for `--trace` and
//!   `--metrics-out`.
//! * **Determinism split.** Counters are pure functions of the input and
//!   the seed, so their JSON section is byte-identical across identically
//!   seeded runs and tests may assert exact values. Durations are wall
//!   clock and live in a separate section ([`Snapshot`] keeps them apart).
//! * **Naming convention.** Metric names are `stage.noun_verb`, e.g.
//!   `extract.pages_scanned`, `dedup.comparisons_made`,
//!   `classify.rules_fired`. Stages: `docgen`, `extract`, `dedup`,
//!   `persist`, `classify`, `analysis`.
//! * **Cross-thread stitching and export.** Spans carry ids, start
//!   timestamps and lanes; work fanned out to `par`/`join` threads adopts
//!   the spawning span via [`worker_scope`]/[`aux_scope`] and
//!   [`stitch_spans`] re-homes it afterwards, so [`chrome_trace`]
//!   (Perfetto-loadable, one lane per worker) and [`profile_rows`]
//!   (per-stage self/child time) see one connected tree per run.
//!
//! # Example
//!
//! ```
//! rememberr_obs::enable();
//! {
//!     let _outer = rememberr_obs::span!("extract.corpus");
//!     let _inner = rememberr_obs::span!("extract.document", "intel-6");
//!     rememberr_obs::count("extract.pages_scanned", 12);
//! }
//! let snap = rememberr_obs::snapshot();
//! assert_eq!(snap.counters.get("extract.pages_scanned"), Some(&12));
//! assert!(rememberr_obs::render_trace().contains("extract.document"));
//! rememberr_obs::reset();
//! rememberr_obs::disable();
//! ```

#![forbid(unsafe_code)]

mod export;
mod metrics;
mod span;

use std::sync::atomic::{AtomicBool, Ordering};

pub use export::{chrome_trace, lane_name, profile_rows, render_profile, root_wall_ns, ProfileRow};
pub use metrics::{Histogram, Snapshot, WorkerStats, BUCKETS};
pub use span::{
    aux_scope, completed_spans, current_span_id, render_trace, span, span_with_detail,
    stitch_spans, take_spans, take_spans_stitched, worker_lane, worker_scope, ScopeGuard, Span,
    SpanRecord, AUX_LANE_BASE, MAIN_LANE,
};

/// Master switch; collection is off until [`enable`] is called.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether completed root spans are retained in the global collector.
/// On by default; long-running processes (the serve daemon) turn it off
/// so span *timings* still feed the duration histograms while the span
/// *records* are dropped — otherwise every request would grow the
/// collector without bound.
static RETAIN_SPANS: AtomicBool = AtomicBool::new(true);

/// Turns metric and span collection on.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns collection back off; already-collected data stays until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether collection is currently on.
#[inline]
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Controls completed-span retention (default: retained).
///
/// With retention off, spans still time their region and feed the
/// duration histograms on close, but the completed [`SpanRecord`]s are
/// discarded instead of accumulating in the global collector. A
/// long-running server with collection enabled MUST turn retention off
/// (or drain spans periodically) to keep memory bounded; one-shot
/// pipeline commands leave it on so `--trace`/`--trace-out` see the full
/// tree.
pub fn retain_spans(retain: bool) {
    RETAIN_SPANS.store(retain, Ordering::Relaxed);
}

/// Whether completed spans are currently retained.
#[inline]
#[must_use]
pub fn spans_retained() -> bool {
    RETAIN_SPANS.load(Ordering::Relaxed)
}

/// Adds `delta` to the named counter. No-op while collection is off.
///
/// Counter values must be deterministic for a fixed input and seed: count
/// events, never elapsed time (durations go to [`record_ns`]).
#[inline]
pub fn count(name: &'static str, delta: u64) {
    if is_enabled() {
        metrics::add_counter(name, delta);
    }
}

/// Records one duration observation, in nanoseconds, into the named
/// log-scale histogram. No-op while collection is off.
#[inline]
pub fn record_ns(name: &'static str, nanos: u64) {
    if is_enabled() {
        metrics::add_duration(name, nanos);
    }
}

/// Accumulates wall-clock utilization for `par_map` worker slot `index`
/// (busy nanoseconds and items processed). Worker stats land in the
/// [`Snapshot::par`] section — wall clock, never mixed into the
/// deterministic counters. No-op while collection is off.
#[inline]
pub fn record_worker(index: usize, busy_ns: u64, tasks: u64) {
    if is_enabled() {
        metrics::add_worker(index, busy_ns, tasks);
    }
}

/// Takes a consistent copy of all counters and duration histograms.
#[must_use]
pub fn snapshot() -> Snapshot {
    metrics::snapshot()
}

/// Clears all counters, histograms, and completed spans, and restores
/// span retention to its default (test isolation and multi-command CLI
/// runs).
pub fn reset() {
    metrics::reset();
    span::reset();
    RETAIN_SPANS.store(true, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use std::sync::{Mutex, MutexGuard};

    /// Unit tests share the process-global registry; serialize them.
    static GATE: Mutex<()> = Mutex::new(());

    pub(crate) fn exclusive() -> MutexGuard<'static, ()> {
        let guard = GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        super::reset();
        super::enable();
        guard
    }

    pub(crate) fn teardown() {
        super::disable();
        super::reset();
    }

    #[test]
    fn disabled_collection_records_nothing() {
        let _gate = exclusive();
        super::disable();
        super::count("test.should_not_appear", 5);
        super::record_ns("test.should_not_appear", 100);
        {
            let _span = super::span("test.invisible");
        }
        let snap = super::snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.durations.is_empty());
        assert!(super::take_spans().is_empty());
        teardown();
    }

    #[test]
    fn enable_disable_round_trips() {
        let _gate = exclusive();
        assert!(super::is_enabled());
        super::disable();
        assert!(!super::is_enabled());
        teardown();
    }
}
