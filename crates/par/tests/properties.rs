//! Property tests for the determinism contract: `par_map` preserves input
//! order at every worker count, and a worker panic always propagates (no
//! silent item loss).

use std::num::NonZeroUsize;
use std::sync::Mutex;

use proptest::prelude::*;
use rememberr_par::{par_map, par_map_indexed, set_jobs};

/// Both properties mutate the process-global job count; serialize them.
static GATE: Mutex<()> = Mutex::new(());

proptest! {
    #[test]
    fn par_map_equals_sequential_map_at_any_worker_count(
        items in prop::collection::vec(any::<u32>(), 0..200),
        jobs in 1usize..9,
    ) {
        let _gate = GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        set_jobs(NonZeroUsize::new(jobs));
        let expected: Vec<u64> = items
            .iter()
            .map(|&n| u64::from(n).wrapping_mul(2654435761))
            .collect();
        let got = par_map(&items, |&n| u64::from(n).wrapping_mul(2654435761));
        set_jobs(None);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn par_map_indexed_passes_every_index_once_in_order(
        len in 0usize..200,
        jobs in 1usize..9,
    ) {
        let _gate = GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        set_jobs(NonZeroUsize::new(jobs));
        let items: Vec<u8> = vec![0; len];
        let got = par_map_indexed(&items, |i, _| i);
        set_jobs(None);
        prop_assert_eq!(got, (0..len).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panics_propagate_at_any_worker_count(
        len in 1usize..100,
        poison_seed in any::<usize>(),
        jobs in 1usize..9,
    ) {
        let _gate = GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        set_jobs(NonZeroUsize::new(jobs));
        let poison = poison_seed % len;
        let items: Vec<usize> = (0..len).collect();
        // Silence the default per-panic backtrace spew for this expected
        // failure; restore afterwards.
        let prior = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = std::panic::catch_unwind(|| {
            par_map(&items, |&n| {
                assert!(n != poison, "poisoned item under test");
                n
            })
        });
        std::panic::set_hook(prior);
        set_jobs(None);
        prop_assert!(result.is_err(), "panic at index {poison} was swallowed");
    }
}
