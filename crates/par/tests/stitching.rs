//! Cross-thread span stitching and worker telemetry through the `par`
//! primitives: `par_map` worker spans adopt the spawning span, `join`
//! lanes stitch their figure-style spans home, per-worker utilization
//! lands in the snapshot's `par` section, and scope exit flushes spans a
//! worker closure failed to close.

use std::num::NonZeroUsize;
use std::sync::{Mutex, MutexGuard};

use rememberr_obs::SpanRecord;
use rememberr_par::{join, par_map, set_jobs};

/// These tests mutate process-global obs + jobs state; serialize them.
static GATE: Mutex<()> = Mutex::new(());

fn exclusive(jobs: usize) -> MutexGuard<'static, ()> {
    let guard = GATE.lock().unwrap_or_else(|p| p.into_inner());
    set_jobs(NonZeroUsize::new(jobs));
    rememberr_obs::reset();
    rememberr_obs::enable();
    guard
}

fn teardown() {
    rememberr_obs::disable();
    rememberr_obs::reset();
    set_jobs(None);
}

fn find<'a>(spans: &'a [SpanRecord], name: &str) -> Vec<&'a SpanRecord> {
    let mut hits = Vec::new();
    for span in spans {
        if span.name == name {
            hits.push(span);
        }
        hits.extend(find(&span.children, name));
    }
    hits
}

#[test]
fn par_map_worker_spans_stitch_under_the_calling_span() {
    let _gate = exclusive(4);
    let items: Vec<u32> = (0..64).collect();
    {
        let _stage = rememberr_obs::span!("test.stage");
        let _ = par_map(&items, |&n| n * 2);
    }
    let spans = rememberr_obs::take_spans_stitched();
    assert_eq!(spans.len(), 1, "worker spans left orphan roots: {spans:?}");
    let stage = &spans[0];
    assert_eq!(stage.name, "test.stage");
    let workers = find(&stage.children, "par.worker");
    assert!(
        !workers.is_empty() && workers.len() <= 4,
        "expected 1..=4 stitched workers, got {}",
        workers.len()
    );
    // Each worker span sits on its own lane, within the --jobs bound.
    for worker in &workers {
        assert_eq!(worker.parent, Some(stage.id));
        assert!((1..=4).contains(&worker.lane), "lane {}", worker.lane);
    }
    teardown();
}

#[test]
fn join_lane_spans_stitch_under_the_calling_span() {
    let _gate = exclusive(2);
    {
        let _stage = rememberr_obs::span!("test.fanout");
        let ((), ()) = join(
            || {
                let _s = rememberr_obs::span!("test.lane_a");
            },
            || {
                let _s = rememberr_obs::span!("test.lane_b");
            },
        );
    }
    let spans = rememberr_obs::take_spans_stitched();
    assert_eq!(spans.len(), 1, "{spans:?}");
    let names: Vec<&str> = spans[0].children.iter().map(|c| c.name.as_str()).collect();
    assert!(names.contains(&"test.lane_a"), "{names:?}");
    assert!(names.contains(&"test.lane_b"), "{names:?}");
    // The spawned lane ran on an aux lane, the caller lane stayed put.
    let lane_b = find(&spans[0].children, "test.lane_b")[0];
    assert!(
        lane_b.lane >= rememberr_obs::AUX_LANE_BASE,
        "{}",
        lane_b.lane
    );
    teardown();
}

#[test]
fn worker_telemetry_accumulates_per_slot() {
    let _gate = exclusive(2);
    let items: Vec<u32> = (0..100).collect();
    let _ = par_map(&items, |&n| n + 1);
    let _ = par_map(&items, |&n| n + 2);
    let snap = rememberr_obs::snapshot();
    assert!(!snap.par.is_empty(), "no worker telemetry recorded");
    assert!(snap.par.len() <= 2, "{:?}", snap.par);
    let tasks: u64 = snap.par.values().map(|w| w.tasks).sum();
    assert_eq!(tasks, 200, "every item is counted exactly once: {snap:?}");
    assert!(snap.par.values().all(|w| w.busy_ns > 0));
    // Telemetry is wall clock: the deterministic counter section must not
    // mention it.
    assert!(
        !snap.counters_json().contains("busy"),
        "{}",
        snap.counters_json()
    );
    teardown();
}

#[test]
fn sequential_runs_record_no_worker_telemetry() {
    let _gate = exclusive(1);
    let items: Vec<u32> = (0..10).collect();
    let _ = par_map(&items, |&n| n);
    let snap = rememberr_obs::snapshot();
    assert!(snap.par.is_empty(), "{:?}", snap.par);
    assert_eq!(snap.worker_imbalance(), None);
    teardown();
}

#[test]
fn spans_leaked_inside_a_worker_closure_are_flushed() {
    let _gate = exclusive(2);
    let items: Vec<u32> = (0..8).collect();
    let _ = par_map(&items, |&n| {
        // A guard the closure never drops: without the par_map scope
        // flush this span (and any children) would vanish with the
        // worker's thread-local stack.
        std::mem::forget(rememberr_obs::span!("test.leaked", "item {n}"));
        n
    });
    let spans = rememberr_obs::take_spans_stitched();
    let leaked = find(&spans, "test.leaked");
    assert_eq!(
        leaked.len(),
        items.len(),
        "leaked spans were discarded: {spans:?}"
    );
    teardown();
}
