//! Two-to-four-way fork-join for heterogeneous independent computations.

/// Runs `fa` and `fb` concurrently and returns both results.
///
/// With one effective worker the two closures run sequentially on the
/// calling thread, in argument order. `fb` runs on a spawned thread; `fa`
/// runs on the caller, so half the work pays no spawn cost.
///
/// # Panics
///
/// Propagates a panic from either closure (both are always completed or
/// joined first).
pub fn join<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if crate::jobs() <= 1 {
        return (fa(), fb());
    }
    // Spans opened inside `fb` run on a fresh thread: adopt the calling
    // span so they stitch under it, on a pooled aux lane. The scope guard
    // also flushes any frame `fb` leaves open.
    let parent_span = rememberr_obs::current_span_id();
    std::thread::scope(|scope| {
        let hb = scope.spawn(move || {
            let _scope = rememberr_obs::aux_scope(parent_span);
            fb()
        });
        let a = fa();
        match hb.join() {
            Ok(b) => (a, b),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

/// Three-way [`join`].
///
/// # Panics
///
/// Propagates a panic from any closure.
pub fn join3<A, B, C, FA, FB, FC>(fa: FA, fb: FB, fc: FC) -> (A, B, C)
where
    A: Send,
    B: Send,
    C: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
    FC: FnOnce() -> C + Send,
{
    let (a, (b, c)) = join(fa, || join(fb, fc));
    (a, b, c)
}

/// Four-way [`join`].
///
/// # Panics
///
/// Propagates a panic from any closure.
pub fn join4<A, B, C, D, FA, FB, FC, FD>(fa: FA, fb: FB, fc: FC, fd: FD) -> (A, B, C, D)
where
    A: Send,
    B: Send,
    C: Send,
    D: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
    FC: FnOnce() -> C + Send,
    FD: FnOnce() -> D + Send,
{
    let ((a, b), (c, d)) = join(|| join(fa, fb), || join(fc, fd));
    (a, b, c, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::exclusive;

    #[test]
    fn join_returns_both_results() {
        let _gate = exclusive(Some(2));
        let (a, b) = join(|| 1 + 1, || "two".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "two");
        crate::set_jobs(None);
    }

    #[test]
    fn join_sequential_when_single_job() {
        let _gate = exclusive(Some(1));
        let main_thread = std::thread::current().id();
        let (ta, tb) = join(
            || std::thread::current().id(),
            || std::thread::current().id(),
        );
        assert_eq!(ta, main_thread);
        assert_eq!(tb, main_thread);
        crate::set_jobs(None);
    }

    #[test]
    fn join4_fans_out_and_preserves_positions() {
        let _gate = exclusive(Some(4));
        let (a, b, c, d) = join4(|| 'a', || 'b', || 'c', || 'd');
        assert_eq!((a, b, c, d), ('a', 'b', 'c', 'd'));
        crate::set_jobs(None);
    }

    #[test]
    fn join_propagates_spawned_panic() {
        let _gate = exclusive(Some(2));
        let result = std::panic::catch_unwind(|| {
            join(
                || 1,
                || -> i32 { panic!("spawned closure failure under test") },
            )
        });
        assert!(result.is_err());
        crate::set_jobs(None);
    }
}
