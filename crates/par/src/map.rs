//! Ordered parallel map over a slice.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Chunks claimed per worker per cursor fetch: small enough to balance
/// skewed item costs (document sizes vary 10x), large enough to amortize
/// the atomic increment on cheap items.
const CHUNKS_PER_WORKER: usize = 8;

/// What one worker thread hands back: its `(input index, result)` pairs,
/// or the payload of the panic that killed it.
type WorkerResult<R> = Result<Vec<(usize, R)>, Box<dyn std::any::Any + Send>>;

/// Maps `f` over `items` in parallel, returning results **in input order**.
///
/// Equivalent to `items.iter().map(f).collect()` for pure `f`, at any
/// worker count (see the crate-level determinism contract). With one
/// effective worker this *is* that sequential expression — no threads.
///
/// # Panics
///
/// Propagates the first worker panic after all workers are joined.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, |_, item| f(item))
}

/// Like [`par_map`], passing the input index alongside each item.
///
/// # Panics
///
/// Propagates the first worker panic after all workers are joined.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = crate::effective_workers(items.len());
    rememberr_obs::count("par.items_mapped", items.len() as u64);
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let chunk = (items.len() / (workers * CHUNKS_PER_WORKER)).max(1);
    let cursor = AtomicUsize::new(0);
    // Captured before spawning: worker spans completed on other threads
    // stitch under the span that called par_map (None while obs is off).
    let parent_span = rememberr_obs::current_span_id();
    // Each worker returns its (index, result) pairs; a panic payload is
    // re-raised only after every worker has been joined, so no thread is
    // left running and no item is silently dropped.
    let mut worker_results: Vec<WorkerResult<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    // Lane + adopted parent for every span opened on this
                    // thread; dropping the guard flushes frames a panicking
                    // or leaking closure left open.
                    let _scope =
                        rememberr_obs::worker_scope(rememberr_obs::worker_lane(w), parent_span);
                    let telemetry = rememberr_obs::is_enabled().then(Instant::now);
                    let _span = rememberr_obs::span!("par.worker", "w{w:02}");
                    let mut produced = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + chunk).min(items.len());
                        for (i, item) in items.iter().enumerate().take(end).skip(start) {
                            produced.push((i, f(i, item)));
                        }
                    }
                    if let Some(started) = telemetry {
                        let busy_ns =
                            u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        rememberr_obs::record_worker(w, busy_ns, produced.len() as u64);
                    }
                    produced
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for result in worker_results.drain(..) {
        match result {
            Ok(produced) => {
                for (i, r) in produced {
                    slots[i] = Some(r);
                }
            }
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("cursor visits every index exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::exclusive;

    #[test]
    fn matches_sequential_map_in_order() {
        let _gate = exclusive(Some(4));
        let items: Vec<u32> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|&n| u64::from(n) * 3).collect();
        assert_eq!(par_map(&items, |&n| u64::from(n) * 3), expected);
        crate::set_jobs(None);
    }

    #[test]
    fn indexed_variant_sees_input_indices() {
        let _gate = exclusive(Some(3));
        let items = vec!["a", "b", "c", "d", "e"];
        let got = par_map_indexed(&items, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
        crate::set_jobs(None);
    }

    #[test]
    fn sequential_path_handles_empty_and_single() {
        let _gate = exclusive(Some(1));
        assert_eq!(par_map::<u8, u8, _>(&[], |&b| b), Vec::<u8>::new());
        assert_eq!(par_map(&[7u8], |&b| b + 1), vec![8]);
        crate::set_jobs(None);
    }

    #[test]
    fn more_workers_than_items_still_covers_all() {
        let _gate = exclusive(Some(16));
        let items = vec![10u64, 20, 30];
        assert_eq!(par_map(&items, |&n| n / 10), vec![1, 2, 3]);
        crate::set_jobs(None);
    }

    #[test]
    fn worker_panic_propagates() {
        let _gate = exclusive(Some(4));
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(&items, |&n| {
                assert!(n != 41, "worker failure under test");
                n
            })
        });
        assert!(result.is_err());
        crate::set_jobs(None);
    }

    #[test]
    fn parallel_workers_emit_labeled_spans() {
        let _gate = exclusive(Some(2));
        rememberr_obs::reset();
        rememberr_obs::enable();
        let items: Vec<u32> = (0..32).collect();
        let _ = par_map(&items, |&n| n + 1);
        let trace = rememberr_obs::render_trace();
        assert!(trace.contains("par.worker [w00]"), "{trace}");
        let snap = rememberr_obs::snapshot();
        assert_eq!(snap.counters.get("par.items_mapped"), Some(&32));
        rememberr_obs::disable();
        rememberr_obs::reset();
        crate::set_jobs(None);
    }
}
