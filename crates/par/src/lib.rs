//! Deterministic scoped-thread parallelism for the RemembERR pipeline.
//!
//! The pipeline's hot stages — document rendering, per-document extraction,
//! the dedup similarity cascade, per-representative classification, and the
//! per-figure analysis passes — are embarrassingly parallel over independent
//! items. This crate provides the two primitives they share, built on
//! `std::thread::scope` only (the workspace builds offline, so no external
//! thread-pool dependency):
//!
//! * [`par_map`] / [`par_map_indexed`] — map a function over a slice with
//!   worker threads pulling chunks from an atomic cursor, collecting results
//!   **in input order** regardless of worker count or scheduling;
//! * [`join`] — run two independent computations on two threads (the
//!   building block for heterogeneous fan-out like the analysis figures).
//!
//! # Determinism contract
//!
//! For a pure `f`, `par_map(items, f)` returns exactly
//! `items.iter().map(f).collect()` at every worker count: results are placed
//! by input index, never by completion order. Anything order-sensitive
//! (union-find merges, key assignment, report aggregation) stays sequential
//! in the callers; only the independent per-item work fans out. Observability
//! counters recorded inside workers are order-independent sums, so metric
//! snapshots are byte-identical across worker counts too.
//!
//! # Worker-count selection
//!
//! The worker count is a process-wide setting: `0`/unset means "auto"
//! ([`std::thread::available_parallelism`]), and [`set_jobs`] pins it (the
//! CLI's `--jobs N`). `jobs = 1` takes a true sequential path — no threads
//! are spawned, no cursor, no result buffers — so single-core behavior is
//! exactly the pre-parallel code path.
//!
//! # Panics
//!
//! A panic in any worker propagates to the caller after all workers have
//! been joined; items are never silently dropped.
//!
//! # Example
//!
//! ```
//! let squares = rememberr_par::par_map(&[1u64, 2, 3, 4], |&n| n * n);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! let (a, b) = rememberr_par::join(|| 2 + 2, || "ok");
//! assert_eq!((a, b), (4, "ok"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod join;
mod map;

pub use join::{join, join3, join4};
pub use map::{par_map, par_map_indexed};

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Pinned worker count; `0` means "auto" (one worker per available core).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Pins the worker count for all subsequent parallel calls in this process,
/// or restores automatic selection with `None`.
///
/// The CLI calls this from `--jobs N`; benches sweep it.
pub fn set_jobs(jobs: Option<NonZeroUsize>) {
    JOBS.store(jobs.map_or(0, NonZeroUsize::get), Ordering::Relaxed);
}

/// The explicitly pinned worker count, if any.
#[must_use]
pub fn configured_jobs() -> Option<NonZeroUsize> {
    NonZeroUsize::new(JOBS.load(Ordering::Relaxed))
}

/// The effective worker count: the pinned value, or the number of available
/// cores when unpinned (falling back to 1 if that cannot be determined).
#[must_use]
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
        pinned => pinned,
    }
}

/// Workers to actually spawn for `len` items: never more than one per item.
pub(crate) fn effective_workers(len: usize) -> usize {
    jobs().min(len).max(1)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// Unit tests mutate the process-global job count; serialize them.
    static GATE: Mutex<()> = Mutex::new(());

    pub(crate) fn exclusive(jobs: Option<usize>) -> MutexGuard<'static, ()> {
        let guard = GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        set_jobs(jobs.and_then(NonZeroUsize::new));
        guard
    }

    #[test]
    fn jobs_pin_and_auto_round_trip() {
        let _gate = exclusive(Some(3));
        assert_eq!(jobs(), 3);
        assert_eq!(configured_jobs(), NonZeroUsize::new(3));
        set_jobs(None);
        assert!(configured_jobs().is_none());
        assert!(jobs() >= 1);
    }

    #[test]
    fn workers_never_exceed_items() {
        let _gate = exclusive(Some(8));
        assert_eq!(effective_workers(3), 3);
        assert_eq!(effective_workers(0), 1);
        assert_eq!(effective_workers(100), 8);
        set_jobs(None);
    }
}
