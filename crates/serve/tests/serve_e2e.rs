//! End-to-end tests over real loopback sockets: byte-identity against the
//! in-process engines, worker-count independence, admission control,
//! deadlines, hot reload, and graceful shutdown.
//!
//! Every test serializes on one gate: the obs registry is process-global
//! (the shed test asserts counter deltas) and the box may have one core,
//! so concurrent servers would only add scheduling noise.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use proptest::test_runner::{ProptestConfig, TestRng, TestRunner};
use rememberr::{Database, Query, QueryEngine};
use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
use rememberr_model::{Context, Date, Effect, Trigger, Vendor, WorkaroundCategory};
use rememberr_serve::router::{render_count_body, render_query_body, DEFAULT_LIMIT};
use rememberr_serve::{ServeConfig, Server};

static GATE: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn annotated_db(scale: f64) -> Database {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(scale));
    let mut db = Database::from_documents(&corpus.structured);
    classify_database(
        &mut db,
        &Rules::standard(),
        HumanOracle::Simulated(&corpus.truth),
        &FourEyesConfig::default(),
    );
    db
}

fn write_db(db: &Database, path: &PathBuf) {
    let mut bytes = Vec::new();
    rememberr::save(db, &mut bytes).expect("snapshot serializes");
    std::fs::write(path, bytes).expect("snapshot writes");
}

/// The shared read-only fixture: one annotated snapshot on disk plus the
/// same database in memory (the in-process oracle).
fn fixture() -> &'static (PathBuf, Database) {
    static FIXTURE: OnceLock<(PathBuf, Database)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("rememberr-serve-e2e-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("fixture dir");
        let db = annotated_db(0.1);
        let path = dir.join("fixture.jsonl");
        write_db(&db, &path);
        (path, db)
    })
}

fn config(workers: usize) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_depth: 16,
        request_timeout: Duration::from_millis(5_000),
        drain_timeout: Duration::from_millis(2_000),
        slow_endpoint: false,
    }
}

/// One single-shot HTTP exchange: returns (status, head, body).
fn exchange(addr: SocketAddr, method: &str, target: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let _ = stream.set_nodelay(true);
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("request writes");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("response reads");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let (head, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("headerless response {text:?}"));
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status in {head:?}"));
    (status, head.to_string(), body.to_string())
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let (status, _head, body) = exchange(addr, "GET", target);
    (status, body)
}

/// A fixed battery exercising every endpoint and parameter family.
fn battery() -> Vec<String> {
    let mut targets = vec![
        "/healthz".to_string(),
        "/stats".to_string(),
        "/query".to_string(),
        "/count".to_string(),
        "/query?vendor=intel&unique=1".to_string(),
        "/query?vendor=amd&limit=3".to_string(),
        "/count?workaround=bios".to_string(),
        "/count?after=2016-01-01&before=2019-01-01&unique=1".to_string(),
        "/query?annotated=1&min-triggers=2&limit=5".to_string(),
    ];
    targets.push(format!("/query?trigger={}", Trigger::ALL[0]));
    targets.push(format!("/count?context={}&vendor=intel", Context::ALL[2]));
    targets.push(format!("/query?effect={}&unique=1", Effect::ALL[1]));
    targets
}

#[test]
fn bodies_match_the_in_process_engines_and_scan_oracle() {
    let _gate = exclusive();
    let (path, db) = fixture();
    let server = Server::start(config(2), path.clone()).expect("server starts");
    let addr = server.local_addr();

    // Health and stats have fixed shapes.
    assert_eq!(get(addr, "/healthz"), (200, "ok\n".to_string()));
    let (status, stats) = get(addr, "/stats");
    assert_eq!(status, 200);
    assert!(stats.contains("\"generation\":1"), "{stats}");
    assert!(
        stats.contains(&format!("\"entries\":{}", db.len())),
        "{stats}"
    );

    // /query and /count agree byte-for-byte with the in-process engines,
    // and the scan engine agrees with the indexed default.
    let cases = [
        (
            "vendor=intel&unique=1",
            Query::new().vendor(Vendor::Intel).unique_only(),
        ),
        (
            "workaround=bios",
            Query::new().workaround(WorkaroundCategory::Bios),
        ),
        (
            "after=2016-01-01&unique=1",
            Query::new()
                .disclosed_after(Date::new(2016, 1, 1).unwrap())
                .unique_only(),
        ),
    ];
    for (params, query) in cases {
        let expected_query =
            render_query_body(&query.run_with(db, QueryEngine::Indexed), DEFAULT_LIMIT);
        let expected_count = render_count_body(query.count_with(db, QueryEngine::Indexed));
        let (s, indexed) = get(addr, &format!("/query?{params}"));
        assert_eq!(
            (s, indexed.as_str()),
            (200, expected_query.as_str()),
            "{params}"
        );
        let (_, scanned) = get(addr, &format!("/query?{params}&engine=scan"));
        assert_eq!(scanned, indexed, "scan oracle diverged for {params}");
        let (s, counted) = get(addr, &format!("/count?{params}"));
        assert_eq!(
            (s, counted.as_str()),
            (200, expected_count.as_str()),
            "{params}"
        );
        let (_, count_scan) = get(addr, &format!("/count?{params}&engine=scan"));
        assert_eq!(
            count_scan, counted,
            "count scan oracle diverged for {params}"
        );
    }

    // Errors are explicit, not silent.
    let (status, body) = get(addr, "/query?vendor=via");
    assert_eq!(status, 400);
    assert!(body.contains("intel"), "{body}");
    let (status, _) = get(addr, "/nowhere");
    assert_eq!(status, 404);
    let (status, head, _) = exchange(addr, "POST", "/query");
    assert_eq!(status, 405);
    assert!(head.contains("Allow: GET"), "{head}");
    let (status, _) = get(addr, "/slow?ms=1");
    assert_eq!(status, 404, "slow fixture is off by default");

    server.stop_and_wait();
}

#[test]
fn proptest_query_mix_matches_oracle_over_http() {
    let _gate = exclusive();
    let (path, db) = fixture();
    let server = Server::start(config(2), path.clone()).expect("server starts");
    let addr = server.local_addr();

    let mut runner = TestRunner::new(ProptestConfig::with_cases(32));
    runner.run_cases(|rng| {
        let (params, query) = random_query(rng);
        let endpoint = if rng.below(2) == 0 {
            "/query"
        } else {
            "/count"
        };
        let sep = if params.is_empty() { "" } else { "?" };
        let target = format!("{endpoint}{sep}{params}");
        let expected = match endpoint {
            "/query" => render_query_body(&query.run_with(db, QueryEngine::Indexed), DEFAULT_LIMIT),
            _ => render_count_body(query.count_with(db, QueryEngine::Indexed)),
        };
        let (status, indexed) = get(addr, &target);
        assert_eq!(
            (status, indexed.as_str()),
            (200, expected.as_str()),
            "served body diverged from in-process for {target}"
        );
        let scan_target = format!(
            "{endpoint}?{params}{}engine=scan",
            if params.is_empty() { "" } else { "&" }
        );
        let (status, scanned) = get(addr, &scan_target);
        assert_eq!(status, 200, "{scan_target}");
        assert_eq!(scanned, indexed, "scan oracle diverged for {target}");
    });

    server.stop_and_wait();
}

/// Draws one random parameter mix and the equivalent in-process query.
fn random_query(rng: &mut TestRng) -> (String, Query) {
    let mut params: Vec<String> = Vec::new();
    let mut query = Query::new();
    if rng.below(2) == 0 {
        let (name, vendor) = if rng.below(2) == 0 {
            ("intel", Vendor::Intel)
        } else {
            ("amd", Vendor::Amd)
        };
        params.push(format!("vendor={name}"));
        query = query.vendor(vendor);
    }
    if rng.below(3) == 0 {
        let t = Trigger::ALL[rng.below(Trigger::ALL.len() as u64) as usize];
        params.push(format!("trigger={t}"));
        query = query.trigger(t);
    }
    if rng.below(3) == 0 {
        let c = Context::ALL[rng.below(Context::ALL.len() as u64) as usize];
        params.push(format!("context={c}"));
        query = query.context(c);
    }
    if rng.below(3) == 0 {
        let e = Effect::ALL[rng.below(Effect::ALL.len() as u64) as usize];
        params.push(format!("effect={e}"));
        query = query.effect(e);
    }
    if rng.below(4) == 0 {
        let w = WorkaroundCategory::ALL[rng.below(WorkaroundCategory::ALL.len() as u64) as usize];
        params.push(format!(
            "workaround={}",
            w.to_string().to_ascii_lowercase().replace(' ', "-")
        ));
        query = query.workaround(w);
    }
    if rng.below(3) == 0 {
        let date = Date::new(2014 + rng.below(5) as i32, 1 + rng.below(12) as u8, 1).unwrap();
        params.push(format!("after={date}"));
        query = query.disclosed_after(date);
    }
    if rng.below(4) == 0 {
        let n = 1 + rng.below(3) as usize;
        params.push(format!("min-triggers={n}"));
        query = query.min_triggers(n);
    }
    if rng.below(2) == 0 {
        params.push("unique=1".to_string());
        query = query.unique_only();
    }
    if rng.below(3) == 0 {
        params.push("annotated=true".to_string());
        query = query.annotated_only();
    }
    (params.join("&"), query)
}

#[test]
fn worker_count_does_not_change_a_single_byte() {
    let _gate = exclusive();
    let (path, _) = fixture();
    let mut outputs: Vec<Vec<(u16, String)>> = Vec::new();
    for workers in [1, 4] {
        let server = Server::start(config(workers), path.clone()).expect("server starts");
        let addr = server.local_addr();
        outputs.push(battery().iter().map(|t| get(addr, t)).collect());
        server.stop_and_wait();
    }
    assert_eq!(outputs[0], outputs[1], "bodies depend on worker count");
}

#[test]
fn saturated_queue_sheds_with_503_and_counts_it() {
    let _gate = exclusive();
    let (path, _) = fixture();
    rememberr_obs::reset();
    rememberr_obs::enable();
    rememberr_obs::retain_spans(false);
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 1,
        slow_endpoint: true,
        ..config(1)
    };
    let server = Server::start(cfg, path.clone()).expect("server starts");
    let addr = server.local_addr();

    // Occupy the single worker...
    let holder = std::thread::spawn(move || get(addr, "/slow?ms=800"));
    std::thread::sleep(Duration::from_millis(200));
    // ...fill the queue (this one will be served after the holder)...
    let queued = std::thread::spawn(move || get(addr, "/healthz"));
    std::thread::sleep(Duration::from_millis(100));
    // ...and overflow it: these must be shed immediately with 503.
    let mut shed_seen = 0;
    for _ in 0..3 {
        let (status, head, body) = exchange(addr, "GET", "/healthz");
        assert_eq!(status, 503, "{body}");
        assert!(head.contains("Retry-After: 1"), "{head}");
        shed_seen += 1;
    }
    assert_eq!(holder.join().unwrap(), (200, "slept 800 ms\n".to_string()));
    assert_eq!(queued.join().unwrap(), (200, "ok\n".to_string()));

    let summary = server.stop_and_wait();
    assert_eq!(summary.shed, shed_seen, "summary disagrees with clients");
    let counters = rememberr_obs::snapshot().counters;
    assert_eq!(counters.get("serve.shed"), Some(&shed_seen));
    assert_eq!(counters.get("serve.timeouts"), None);
    assert!(counters["serve.requests"] >= 2);
    rememberr_obs::reset();
    rememberr_obs::disable();
}

#[test]
fn deadline_overrun_returns_504_and_counts_a_timeout() {
    let _gate = exclusive();
    let (path, _) = fixture();
    let cfg = ServeConfig {
        slow_endpoint: true,
        request_timeout: Duration::from_millis(150),
        ..config(1)
    };
    let server = Server::start(cfg, path.clone()).expect("server starts");
    let addr = server.local_addr();
    let (status, body) = get(addr, "/slow?ms=400");
    assert_eq!(status, 504, "{body}");
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200, "server keeps serving after a timeout");
    let summary = server.stop_and_wait();
    assert_eq!(summary.timeouts, 1);
    assert_eq!(summary.requests, 2);
}

#[test]
fn reload_hot_swaps_without_dropping_inflight_requests() {
    let _gate = exclusive();
    let dir = std::env::temp_dir().join(format!("rememberr-serve-reload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("reload dir");
    let path = dir.join("live.jsonl");
    let first = annotated_db(0.05);
    write_db(&first, &path);

    let cfg = ServeConfig {
        workers: 2,
        slow_endpoint: true,
        ..config(2)
    };
    let server = Server::start(cfg, path.clone()).expect("server starts");
    let addr = server.local_addr();
    assert_eq!(
        get(addr, "/count").1,
        render_count_body(first.len()),
        "generation 1 serves the first snapshot"
    );

    // Keep one request in flight across the swap.
    let inflight = std::thread::spawn(move || get(addr, "/slow?ms=600"));
    std::thread::sleep(Duration::from_millis(150));

    let second = annotated_db(0.08);
    assert_ne!(first.len(), second.len(), "fixture sizes must differ");
    write_db(&second, &path);
    let (status, _head, body) = exchange(addr, "POST", "/reload");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("generation 2"), "{body}");
    assert_eq!(get(addr, "/count").1, render_count_body(second.len()));
    let (_, stats) = get(addr, "/stats");
    assert!(stats.contains("\"generation\":2"), "{stats}");

    assert_eq!(
        inflight.join().unwrap(),
        (200, "slept 600 ms\n".to_string()),
        "in-flight request survived the swap"
    );

    let summary = server.stop_and_wait();
    assert_eq!(summary.reloads, 1);
    assert_eq!(summary.generation, 2);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn shutdown_endpoint_drains_and_exits() {
    let _gate = exclusive();
    let (path, _) = fixture();
    let server = Server::start(config(2), path.clone()).expect("server starts");
    let addr = server.local_addr();
    for _ in 0..3 {
        assert_eq!(get(addr, "/healthz").0, 200);
    }
    let (status, _head, body) = exchange(addr, "POST", "/shutdown");
    assert_eq!((status, body.as_str()), (200, "shutting down\n"));
    let summary = server.wait();
    assert_eq!(summary.requests, 4);
    assert_eq!(summary.shed, 0);
    // The listener is gone: new connections are refused or reset.
    std::thread::sleep(Duration::from_millis(50));
    let refused = TcpStream::connect(addr)
        .map(|mut s| {
            let _ = write!(s, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
            let mut buf = Vec::new();
            s.read_to_end(&mut buf)
                .map(|_| buf.is_empty())
                .unwrap_or(true)
        })
        .unwrap_or(true);
    assert!(refused, "server still answered after shutdown");
}
