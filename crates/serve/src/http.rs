//! A deliberately small HTTP/1.1 layer over raw byte streams.
//!
//! The daemon serves a closed set of plain-text endpoints to trusted
//! clients (curl, the load generator, the test suite), so this implements
//! exactly the slice of RFC 9112 those need: request line + headers,
//! `Content-Length` bodies (read and discarded, bounded), keep-alive by
//! default with `Connection: close` honored, percent-decoded query
//! strings. Responses carry no `Date` header — every response byte is a
//! pure function of the request and the snapshot, which is what lets the
//! test suite assert byte-identical bodies across worker counts.
//!
//! Reads go through [`read_request`], which polls in small read-timeout
//! slices so a worker blocked on an idle keep-alive connection still
//! notices shutdown within one slice.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Longest accepted head (request line + headers), in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Longest accepted request body, in bytes (bodies are read and discarded).
pub const MAX_BODY_BYTES: usize = 64 * 1024;
/// Read-timeout slice: the granularity at which blocked reads re-check
/// shutdown and deadlines.
pub const READ_SLICE: Duration = Duration::from_millis(25);

/// One parsed request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercase as sent (`GET`, `POST`).
    pub method: String,
    /// Decoded path component (`/query`).
    pub path: String,
    /// Query parameters in order of appearance, percent-decoded.
    pub params: Vec<(String, String)>,
    /// Whether the client asked to close after this response.
    pub close: bool,
    /// The instant the first byte of this request was seen — the start of
    /// the request's deadline budget for keep-alive requests.
    pub arrived: Instant,
}

impl Request {
    /// First value of a query parameter.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// All values of a repeated query parameter, in order.
    pub fn params_all<'r>(&'r self, name: &'r str) -> impl Iterator<Item = &'r str> {
        self.params
            .iter()
            .filter(move |(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why [`read_request`] returned no request.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A full request head was parsed (body, if any, already discarded).
    Request(Request),
    /// The peer closed the connection before sending a request.
    Eof,
    /// The wait expired. `started` tells whether any request bytes had
    /// arrived: a started request gets a 504, an idle connection a quiet
    /// close.
    TimedOut {
        /// Whether the head had begun arriving.
        started: bool,
    },
    /// The caller's stop condition became true while waiting.
    Stopped,
    /// The bytes on the wire are not an acceptable request.
    Malformed(String),
}

/// Reads one request from the stream, polling in [`READ_SLICE`] chunks.
///
/// `give_up_at` bounds the wait for a request to *arrive and complete*;
/// `stop` is polled between slices so shutdown interrupts idle waits.
pub fn read_request(
    stream: &mut TcpStream,
    give_up_at: Instant,
    stop: &dyn Fn() -> bool,
) -> ReadOutcome {
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 2048];
    loop {
        if let Some(end) = head_end(&buf) {
            return finish_request(stream, buf, end, give_up_at, stop);
        }
        if buf.len() > MAX_HEAD_BYTES {
            return ReadOutcome::Malformed("request head too large".into());
        }
        if stop() {
            return ReadOutcome::Stopped;
        }
        if Instant::now() >= give_up_at {
            return ReadOutcome::TimedOut {
                started: !buf.is_empty(),
            };
        }
        let _ = stream.set_read_timeout(Some(READ_SLICE));
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Malformed("connection closed mid-request".into())
                };
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Eof,
        }
    }
}

/// Byte offset just past the `\r\n\r\n` terminating the head, if present.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

fn finish_request(
    stream: &mut TcpStream,
    buf: Vec<u8>,
    head_end: usize,
    give_up_at: Instant,
    stop: &dyn Fn() -> bool,
) -> ReadOutcome {
    let _span = rememberr_obs::span!("serve.parse");
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(text) => text,
        Err(_) => return ReadOutcome::Malformed("request head is not UTF-8".into()),
    };
    let mut request = match parse_head(head) {
        Ok(r) => r,
        Err(e) => return ReadOutcome::Malformed(e),
    };
    request.arrived = Instant::now();
    // Read and discard any body so the next keep-alive request starts at a
    // message boundary.
    let announced = content_length(head);
    let Some(length) = announced else {
        return ReadOutcome::Malformed("unreadable Content-Length".into());
    };
    if length > MAX_BODY_BYTES {
        return ReadOutcome::Malformed("request body too large".into());
    }
    let mut remaining = length.saturating_sub(buf.len() - head_end);
    let mut chunk = [0u8; 2048];
    while remaining > 0 {
        if stop() || Instant::now() >= give_up_at {
            return ReadOutcome::Malformed("request body incomplete".into());
        }
        let _ = stream.set_read_timeout(Some(READ_SLICE));
        match stream.read(&mut chunk[..remaining.min(2048)]) {
            Ok(0) => return ReadOutcome::Malformed("connection closed mid-body".into()),
            Ok(n) => remaining -= n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Malformed("connection error mid-body".into()),
        }
    }
    ReadOutcome::Request(request)
}

/// `Content-Length` announced by the head; `Some(0)` when absent, `None`
/// when unparseable.
fn content_length(head: &str) -> Option<usize> {
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                return value.trim().parse().ok();
            }
        }
    }
    Some(0)
}

fn parse_head(head: &str) -> Result<Request, String> {
    let mut lines = head.lines();
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default();
    let target = parts.next().ok_or("request line lacks a target")?;
    let version = parts.next().ok_or("request line lacks a version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version:?}"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(format!("unsupported method {method:?}"));
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path)?;
    if !path.starts_with('/') {
        return Err(format!("target {target:?} is not an absolute path"));
    }
    let params = match raw_query {
        Some(q) => parse_query_string(q)?,
        None => Vec::new(),
    };

    let mut close = version == "HTTP/1.0";
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("connection") {
                let value = value.trim();
                if value.eq_ignore_ascii_case("close") {
                    close = true;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    close = false;
                }
            }
        }
    }

    Ok(Request {
        method: method.to_string(),
        path,
        params,
        close,
        arrived: Instant::now(),
    })
}

/// Splits `a=1&b=two%20words` into decoded pairs, preserving order and
/// repeats.
pub fn parse_query_string(raw: &str) -> Result<Vec<(String, String)>, String> {
    let mut params = Vec::new();
    for piece in raw.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = piece.split_once('=').unwrap_or((piece, ""));
        params.push((percent_decode(k)?, percent_decode(v)?));
    }
    Ok(params)
}

/// Decodes `%XX` escapes and `+`-for-space.
///
/// # Errors
///
/// Rejects truncated or non-hex escapes and non-UTF-8 results.
pub fn percent_decode(text: &str) -> Result<String, String> {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or_else(|| format!("truncated percent escape in {text:?}"))?;
                let hex = std::str::from_utf8(hex).map_err(|_| "bad percent escape".to_string())?;
                let byte = u8::from_str_radix(hex, 16)
                    .map_err(|_| format!("bad percent escape %{hex} in {text:?}"))?;
                out.push(byte);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| format!("{text:?} does not decode to UTF-8"))
}

/// One response, rendered deterministically (no `Date`, fixed header
/// order) so identical requests produce byte-identical wire output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes (plain text or JSON).
    pub body: String,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers, in emission order (e.g. `Retry-After`).
    pub extra_headers: BTreeMap<&'static str, String>,
    /// Whether the server closes the connection after this response.
    pub close: bool,
}

impl Response {
    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into(),
            content_type: "text/plain; charset=utf-8",
            extra_headers: BTreeMap::new(),
            close: false,
        }
    }

    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            content_type: "application/json",
            ..Response::text(status, body)
        }
    }

    /// The canonical 503 shed response.
    pub fn shed() -> Self {
        let mut r = Response::text(503, "queue full, retry later\n");
        r.extra_headers.insert("Retry-After", "1".to_string());
        r.close = true;
        r
    }

    /// The canonical 504 deadline response.
    pub fn deadline_exceeded() -> Self {
        let mut r = Response::text(504, "request deadline exceeded\n");
        r.close = true;
        r
    }

    /// Marks the connection for closure after this response.
    pub fn closing(mut self) -> Self {
        self.close = true;
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }

    /// The full wire form: status line, headers, body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(if self.close {
            "Connection: close\r\n\r\n"
        } else {
            "Connection: keep-alive\r\n\r\n"
        });
        let mut bytes = head.into_bytes();
        bytes.extend_from_slice(self.body.as_bytes());
        bytes
    }

    /// Writes the response to the stream.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        stream.write_all(&self.to_bytes())?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding_handles_escapes_plus_and_errors() {
        assert_eq!(percent_decode("plain").unwrap(), "plain");
        assert_eq!(percent_decode("a%20b+c").unwrap(), "a b c");
        assert_eq!(percent_decode("%41%6d%44").unwrap(), "AmD");
        assert!(percent_decode("%4").is_err());
        assert!(percent_decode("%zz").is_err());
        assert!(percent_decode("%ff").is_err(), "lone 0xff is not UTF-8");
    }

    #[test]
    fn query_strings_keep_order_and_repeats() {
        let params = parse_query_string("vendor=intel&trigger=a&trigger=b&flag").unwrap();
        assert_eq!(
            params,
            vec![
                ("vendor".into(), "intel".into()),
                ("trigger".into(), "a".into()),
                ("trigger".into(), "b".into()),
                ("flag".into(), String::new()),
            ]
        );
    }

    #[test]
    fn request_heads_parse_method_path_params_and_connection() {
        let req = parse_head(
            "GET /query?vendor=intel&unique=1 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/query");
        assert_eq!(req.param("vendor"), Some("intel"));
        assert_eq!(req.param("unique"), Some("1"));
        assert_eq!(req.param("missing"), None);
        assert!(req.close);

        let req = parse_head("POST /reload HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "POST");
        assert!(req.params.is_empty());
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");

        let req = parse_head("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(req.close, "HTTP/1.0 defaults to close");
    }

    #[test]
    fn malformed_heads_are_rejected() {
        assert!(parse_head("GET\r\n\r\n").is_err());
        assert!(parse_head("GET /x SPDY/3\r\n\r\n").is_err());
        assert!(parse_head("get /x HTTP/1.1\r\n\r\n").is_err());
        assert!(parse_head("GET relative HTTP/1.1\r\n\r\n").is_err());
        assert!(parse_head("GET /x?a=%zz HTTP/1.1\r\n\r\n").is_err());
    }

    #[test]
    fn responses_render_deterministically() {
        let a = Response::text(200, "4\n").to_bytes();
        let b = Response::text(200, "4\n").to_bytes();
        assert_eq!(a, b);
        let text = String::from_utf8(a).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(!text.contains("Date:"), "no wall-clock headers: {text}");
        assert!(text.ends_with("\r\n\r\n4\n"));
    }

    #[test]
    fn shed_response_advertises_retry_after_and_closes() {
        let text = String::from_utf8(Response::shed().to_bytes()).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }
}
