//! `rememberr-serve`: a concurrent query-serving daemon over one errata
//! snapshot.
//!
//! The paper frames the errata database as a community artifact to be
//! *queried*, not just analyzed once; this crate is the long-running form
//! of that surface. One process loads a snapshot (JSONL or binary,
//! sniffed), builds the query index once, and serves:
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `GET /query?...` | matching errata, CLI-compatible parameters |
//! | `GET /count?...` | bare match count |
//! | `GET /stats` | snapshot generation/format/sizes (JSON) |
//! | `GET /metrics` | obs counter + histogram snapshot (JSON) |
//! | `GET /healthz` | liveness |
//! | `POST /reload` | re-read the snapshot, hot-swap generations |
//! | `POST /shutdown` | graceful drain and exit |
//!
//! # Architecture
//!
//! ```text
//!             accept()                St try_push                 pop()
//!   clients ──────────► acceptor ───────────────► bounded queue ───────► worker 0..N
//!                          │ full?                 (depth = Q)             │
//!                          └── 503 Retry-After                             │ keep-alive loop:
//!                              (shed, never queued)                        │ read → route → write
//!                                                                         ▼
//!                                                         RwLock<Arc<LoadedSnapshot>>
//!                                                          (reload swaps the Arc)
//! ```
//!
//! Three properties the tests pin down:
//!
//! * **Bounded admission.** The accept queue holds at most `queue_depth`
//!   connections; beyond that the acceptor writes `503 Retry-After: 1`
//!   and closes — memory use is bounded by `workers + queue_depth`
//!   connections no matter the offered load. A per-request deadline
//!   (counted from accept for a connection's first request, so queue wait
//!   is charged) turns stale work into `504` instead of serving it.
//! * **Deterministic bodies.** Responses carry no timestamps and no
//!   worker identity: an identical request against the same snapshot
//!   generation yields a byte-identical body at any worker count, with
//!   `?engine=scan` as the correctness oracle for the indexed engine.
//! * **Non-blocking hot swap.** `POST /reload` builds the new generation
//!   off the serving path and publishes it by swapping an `Arc`;
//!   in-flight requests finish on the generation they started with.
//!
//! Observability: spans `serve.parse` / `serve.execute` / `serve.write`,
//! counters `serve.requests` / `serve.shed` / `serve.timeouts` /
//! `serve.reloads`, and the `serve.request` latency histogram, all through
//! `rememberr_obs`. Long-running processes should call
//! `rememberr_obs::retain_spans(false)` so span records do not accumulate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod limits;
pub mod pool;
pub mod router;
pub mod state;

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use http::{ReadOutcome, Response};
use limits::Deadline;
use pool::{BoundedQueue, PushError};
use router::RouteCtx;
use state::ServeState;

/// How the daemon is sized and bounded.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:8377`, port 0 for ephemeral).
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Accepted connections that may wait for a worker before the
    /// acceptor starts shedding with 503.
    pub queue_depth: usize,
    /// Per-request budget; exceeding it yields 504 and closes.
    pub request_timeout: Duration,
    /// How long shutdown waits for queued connections to drain before
    /// discarding them.
    pub drain_timeout: Duration,
    /// Routes the `GET /slow?ms=N` test fixture (off in production).
    pub slow_endpoint: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            request_timeout: Duration::from_millis(2_000),
            drain_timeout: Duration::from_millis(2_000),
            slow_endpoint: false,
        }
    }
}

/// Totals a finished server reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests that reached a handler.
    pub requests: u64,
    /// Connections refused with 503 (queue full or discarded at drain).
    pub shed: u64,
    /// Requests that exceeded their deadline (504).
    pub timeouts: u64,
    /// Successful snapshot reloads.
    pub reloads: u64,
    /// Snapshot generation serving at exit.
    pub generation: u64,
}

struct Shared {
    state: ServeState,
    config: ServeConfig,
    queue: BoundedQueue<(TcpStream, Instant)>,
    shutdown: AtomicBool,
    requests: AtomicU64,
    shed: AtomicU64,
    timeouts: AtomicU64,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A running server: acceptor + worker pool over one [`ServeState`].
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Loads the snapshot at `db_path`, binds `config.addr`, and starts
    /// accepting.
    ///
    /// # Errors
    ///
    /// Fails on an unloadable snapshot or an unbindable address; nothing
    /// is left running.
    pub fn start(config: ServeConfig, db_path: PathBuf) -> Result<Server, String> {
        let state = ServeState::boot(db_path)?;
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
        let local_addr = listener.local_addr().map_err(|e| e.to_string())?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot set nonblocking accept: {e}"))?;

        let shared = Arc::new(Shared {
            state,
            queue: BoundedQueue::new(config.queue_depth),
            config,
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
        });

        let workers = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(|e| format!("cannot spawn worker: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-acceptor".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .map_err(|e| format!("cannot spawn acceptor: {e}"))?
        };

        Ok(Server {
            shared,
            local_addr,
            acceptor,
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Initiates graceful shutdown (equivalent to `POST /shutdown`).
    pub fn stop(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until the server exits (via [`Server::stop`] or
    /// `POST /shutdown`): the acceptor stops, queued connections drain
    /// within the drain timeout, workers join. Returns the totals.
    pub fn wait(self) -> ServeSummary {
        let _ = self.acceptor.join();
        // The acceptor closed the queue on its way out; give queued
        // connections the drain budget, then discard the rest as shed.
        let drain = Deadline::new(self.shared.config.drain_timeout);
        while !self.shared.queue.is_empty() && !drain.expired() {
            std::thread::sleep(Duration::from_millis(5));
        }
        let discarded = self.shared.queue.discard_queued() as u64;
        if discarded > 0 {
            self.shared.shed.fetch_add(discarded, Ordering::Relaxed);
            rememberr_obs::count("serve.shed", discarded);
        }
        for worker in self.workers {
            let _ = worker.join();
        }
        let generation = self.shared.state.snapshot().generation;
        ServeSummary {
            requests: self.shared.requests.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            timeouts: self.shared.timeouts.load(Ordering::Relaxed),
            reloads: generation - 1,
            generation,
        }
    }

    /// Stops and waits in one call.
    pub fn stop_and_wait(self) -> ServeSummary {
        self.stop();
        self.wait()
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                match shared.queue.try_push((stream, Instant::now())) {
                    Ok(()) => {}
                    Err(PushError::Full((stream, _)) | PushError::Closed((stream, _))) => {
                        shed(shared, stream);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    shared.queue.close();
}

/// Refuses one connection with the canonical 503 (best-effort write).
fn shed(shared: &Shared, mut stream: TcpStream) {
    shared.shed.fetch_add(1, Ordering::Relaxed);
    rememberr_obs::count("serve.shed", 1);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let _ = stream.write_all(&Response::shed().to_bytes());
    // Closing with the request still unread would RST the connection and
    // can destroy the 503 before the client reads it; signal EOF and
    // drain briefly so the refusal arrives intact.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let mut sink = [0u8; 512];
    for _ in 0..4 {
        match std::io::Read::read(&mut stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some((stream, accepted_at)) = shared.queue.pop() {
        serve_connection(shared, stream, accepted_at);
    }
}

fn serve_connection(shared: &Shared, mut stream: TcpStream, accepted_at: Instant) {
    let timeout = shared.config.request_timeout;
    // The first request's budget starts at accept, so time spent queued
    // counts against it; keep-alive requests restart the clock when their
    // first byte arrives.
    let mut budget_start = accepted_at;
    let mut first = true;
    let stop = || shared.shutting_down();
    loop {
        let outcome = http::read_request(&mut stream, budget_start + timeout, &stop);
        let request = match outcome {
            ReadOutcome::Request(r) => r,
            ReadOutcome::Eof | ReadOutcome::Stopped => return,
            ReadOutcome::TimedOut { started: false } => return,
            ReadOutcome::TimedOut { started: true } => {
                timeout_response(shared, &mut stream);
                return;
            }
            ReadOutcome::Malformed(message) => {
                let _ = Response::text(400, format!("{message}\n"))
                    .closing()
                    .write_to(&mut stream);
                return;
            }
        };
        // First request: budget from accept, so queue wait is charged.
        // Keep-alive requests: budget from their own first byte.
        let deadline = if first {
            Deadline::starting(accepted_at, timeout)
        } else {
            Deadline::starting(request.arrived, timeout)
        };
        first = false;
        shared.requests.fetch_add(1, Ordering::Relaxed);
        rememberr_obs::count("serve.requests", 1);
        if deadline.expired() {
            timeout_response(shared, &mut stream);
            return;
        }

        let ctx = RouteCtx {
            state: &shared.state,
            slow_endpoint: shared.config.slow_endpoint,
            shutdown: &shared.shutdown,
        };
        let response = {
            let _span = rememberr_obs::span!("serve.execute");
            router::respond(&request, &ctx)
        };
        if deadline.expired() {
            timeout_response(shared, &mut stream);
            return;
        }

        let written = {
            let _span = rememberr_obs::span!("serve.write");
            response.write_to(&mut stream)
        };
        rememberr_obs::record_ns("serve.request", deadline.elapsed_ns());
        if written.is_err() || response.close || request.close || shared.shutting_down() {
            return;
        }
        budget_start = Instant::now();
    }
}

fn timeout_response(shared: &Shared, stream: &mut TcpStream) {
    shared.timeouts.fetch_add(1, Ordering::Relaxed);
    rememberr_obs::count("serve.timeouts", 1);
    let _ = Response::deadline_exceeded().write_to(stream);
}
