//! The bounded MPMC queue feeding the worker pool.
//!
//! One `Mutex<VecDeque>` plus a `Condvar` — the standard-library shape of
//! a bounded channel. The acceptor side never blocks: [`BoundedQueue::try_push`]
//! fails immediately when the queue is full, which is exactly the admission
//! decision (the caller sheds the connection with a 503). The worker side
//! blocks in [`BoundedQueue::pop`] until an item arrives or the queue is
//! closed and drained, so shutdown is a `close()` followed by worker joins.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue with non-blocking push.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

/// Why a [`BoundedQueue::try_push`] was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back for shedding.
    Full(T),
    /// The queue is closed (shutdown began); the item is handed back.
    Closed(T),
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` queued items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Enqueues without blocking; refuses when full or closed.
    ///
    /// # Errors
    ///
    /// Returns the item back inside [`PushError`] so the caller can shed it.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed and empty
    /// (`None` — the consumer should exit).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Closes the queue: pushes start failing, pops drain what is left and
    /// then return `None`. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Drops every queued item without waking consumers for them.
    /// Returns how many were discarded (shutdown past the drain deadline).
    pub fn discard_queued(&self) -> usize {
        let mut inner = self.lock();
        let n = inner.items.len();
        inner.items.clear();
        n
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_preserves_fifo_order() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn full_queue_refuses_and_returns_the_item() {
        let q = BoundedQueue::new(2);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        assert_eq!(q.try_push("c"), Err(PushError::Full("c")));
        assert_eq!(q.pop(), Some("a"));
        q.try_push("c").unwrap();
    }

    #[test]
    fn close_drains_then_returns_none() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed(2)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "close is sticky");
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        q.try_push(7).unwrap();
        q.close();
        let mut got: Vec<Option<u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, [None, None, Some(7)]);
    }

    #[test]
    fn discard_queued_counts_dropped_items() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.discard_queued(), 5);
        assert!(q.is_empty());
    }
}
