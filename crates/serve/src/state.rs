//! Shared server state: the loaded snapshot and its hot-swap machinery.
//!
//! The snapshot lives behind `RwLock<Arc<LoadedSnapshot>>`. A request
//! takes the read lock just long enough to clone the `Arc` — nanoseconds —
//! then executes against its private reference, so in-flight requests
//! keep serving the generation they started on while a reload publishes
//! the next one. The `RwLock` write is the only synchronization the swap
//! needs: `Arc::clone` under the read lock happens-before or happens-after
//! the pointer store under the write lock, never mid-way, and the old
//! generation's memory is freed when its last in-flight request drops its
//! `Arc`. Reloads themselves serialize on a separate mutex so two
//! concurrent `POST /reload`s build one after the other instead of racing
//! to publish.

use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use rememberr::{Database, SnapshotFormat};

/// One immutable loaded snapshot generation.
///
/// The query index is built eagerly at load time (off the serving path)
/// so the first request against a new generation pays no build cost and
/// concurrent first requests never contend on the `OnceLock`.
pub struct LoadedSnapshot {
    /// The database, with its query index pre-built.
    pub db: Database,
    /// The on-disk format the snapshot was read from.
    pub format: SnapshotFormat,
    /// Monotonic generation number: 1 for the boot snapshot, +1 per reload.
    pub generation: u64,
}

/// Loads and indexes a snapshot file, sniffing its format.
pub fn load_snapshot(path: &Path, generation: u64) -> Result<LoadedSnapshot, String> {
    let file = File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let head = {
        use std::io::Read;
        let mut head = [0u8; 16];
        let mut file = &file;
        let n = file.read(&mut head).map_err(|e| e.to_string())?;
        head[..n].to_vec()
    };
    let format = SnapshotFormat::sniff(&head);
    let file = File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let db =
        rememberr::load(BufReader::new(file)).map_err(|e| format!("{}: {e}", path.display()))?;
    let _ = db.query_index();
    Ok(LoadedSnapshot {
        db,
        format,
        generation,
    })
}

/// The state every worker shares: the current snapshot and the reload path.
pub struct ServeState {
    current: RwLock<Arc<LoadedSnapshot>>,
    path: PathBuf,
    generation: AtomicU64,
    reload_gate: Mutex<()>,
}

impl ServeState {
    /// Boots from the snapshot at `path` (generation 1).
    pub fn boot(path: PathBuf) -> Result<Self, String> {
        let snapshot = load_snapshot(&path, 1)?;
        Ok(ServeState {
            current: RwLock::new(Arc::new(snapshot)),
            path,
            generation: AtomicU64::new(1),
            reload_gate: Mutex::new(()),
        })
    }

    /// The snapshot to serve this request from. In-flight requests keep
    /// their `Arc` across a concurrent reload.
    pub fn snapshot(&self) -> Arc<LoadedSnapshot> {
        self.current
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// The snapshot path reloads re-read.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Re-reads the snapshot file and atomically publishes it as the next
    /// generation. Readers never block on the build — only on the pointer
    /// swap itself.
    ///
    /// # Errors
    ///
    /// Load failures leave the current generation serving.
    pub fn reload(&self) -> Result<Arc<LoadedSnapshot>, String> {
        let _gate = self
            .reload_gate
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let generation = self.generation.load(Ordering::Relaxed) + 1;
        let next = Arc::new(load_snapshot(&self.path, generation)?);
        self.generation.store(generation, Ordering::Relaxed);
        let mut current = self
            .current
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *current = next.clone();
        drop(current);
        rememberr_obs::count("serve.reloads", 1);
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_docgen::{CorpusSpec, SyntheticCorpus};

    fn write_snapshot(dir: &Path, format: SnapshotFormat) -> PathBuf {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.05));
        let db = Database::from_documents(&corpus.structured);
        let path = dir.join("snap.db");
        let mut out = Vec::new();
        rememberr::save_as(&db, &mut out, format).unwrap();
        std::fs::write(&path, out).unwrap();
        path
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rememberr-serve-state-{tag}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn boot_sniffs_format_and_prebuilds_the_index() {
        for format in [SnapshotFormat::Jsonl, SnapshotFormat::Binary] {
            let dir = tempdir(&format.to_string());
            let path = write_snapshot(&dir, format);
            let state = ServeState::boot(path).unwrap();
            let snap = state.snapshot();
            assert_eq!(snap.format, format);
            assert_eq!(snap.generation, 1);
            assert!(!snap.db.is_empty());
            std::fs::remove_dir_all(dir).ok();
        }
    }

    #[test]
    fn reload_bumps_generation_and_inflight_readers_keep_theirs() {
        let dir = tempdir("reload");
        let path = write_snapshot(&dir, SnapshotFormat::Jsonl);
        let state = ServeState::boot(path).unwrap();
        let held = state.snapshot();
        let next = state.reload().unwrap();
        assert_eq!(next.generation, 2);
        assert_eq!(state.snapshot().generation, 2);
        assert_eq!(held.generation, 1, "in-flight Arc survives the swap");
        assert_eq!(held.db.len(), next.db.len());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn reload_failure_keeps_serving_the_old_generation() {
        let dir = tempdir("reload-fail");
        let path = write_snapshot(&dir, SnapshotFormat::Jsonl);
        let state = ServeState::boot(path.clone()).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(state.reload().is_err());
        assert_eq!(state.snapshot().generation, 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_snapshot_fails_boot_with_the_path() {
        let err = ServeState::boot(PathBuf::from("/nonexistent/snap.db"))
            .map(|_| ())
            .unwrap_err();
        assert!(err.contains("/nonexistent/snap.db"), "{err}");
    }
}
