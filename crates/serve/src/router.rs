//! Route dispatch: URL parameters to [`Query`] values to response bodies.
//!
//! Parameter names mirror the CLI's `query` options one-for-one
//! (`vendor`, `design`, `trigger`…), and the parsing goes through the
//! same shared code (`rememberr_model` facet parsing, the taxonomy
//! `FromStr` impls), so a URL and a CLI invocation describing the same
//! query cannot drift apart. Rendering is a pure function of the request
//! and the snapshot — no timestamps, no worker identity — which is what
//! makes `identical request → byte-identical body` hold at any worker
//! count and lets the scan engine (`?engine=scan`) act as a correctness
//! oracle for the default indexed engine.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use rememberr::{DbEntry, Query, QueryEngine};
use rememberr_model::{
    parse_fix, parse_vendor, parse_workaround, Context, Date, Design, Effect, MsrName, Trigger,
    TriggerClass,
};

use crate::http::{Request, Response};
use crate::state::{LoadedSnapshot, ServeState};

/// Parameters every query endpoint accepts; anything else is a 400.
const QUERY_PARAMS: &[&str] = &[
    "vendor",
    "design",
    "trigger",
    "trigger-class",
    "context",
    "effect",
    "msr",
    "workaround",
    "fix",
    "after",
    "before",
    "min-triggers",
    "unique",
    "annotated",
    "engine",
    "limit",
];

/// Default `/query` render cap, matching the CLI's `--limit` default.
pub const DEFAULT_LIMIT: usize = 20;

/// What the router needs besides the request itself.
pub struct RouteCtx<'a> {
    /// The snapshot/hot-swap state.
    pub state: &'a ServeState,
    /// Whether the `/slow` test fixture is routable.
    pub slow_endpoint: bool,
    /// Set by `POST /shutdown`; the accept/worker loops poll it.
    pub shutdown: &'a AtomicBool,
}

/// Builds a [`Query`] from URL parameters, rejecting unknown names.
///
/// # Errors
///
/// Returns the 400 body text: which parameter failed and what is valid.
pub fn parse_query(req: &Request) -> Result<Query, String> {
    for (name, _) in &req.params {
        if !QUERY_PARAMS.contains(&name.as_str()) {
            return Err(format!(
                "unknown parameter {name:?} (valid: {})",
                QUERY_PARAMS.join(", ")
            ));
        }
    }
    let mut query = Query::new();
    if let Some(text) = req.param("vendor") {
        query = query.vendor(parse_vendor(text)?);
    }
    if let Some(text) = req.param("design") {
        let design: Design = text
            .parse()
            .map_err(|_| format!("unknown design {text:?} (label like \"Core 6\" or reference)"))?;
        query = query.design(design);
    }
    for code in req.params_all("trigger") {
        let trigger: Trigger = code
            .parse()
            .map_err(|_| format!("unknown trigger code {code:?}"))?;
        query = query.trigger(trigger);
    }
    if let Some(code) = req.param("trigger-class") {
        let class: TriggerClass = code
            .parse()
            .map_err(|_| format!("unknown trigger class {code:?}"))?;
        query = query.trigger_class(class);
    }
    for code in req.params_all("context") {
        let context: Context = code
            .parse()
            .map_err(|_| format!("unknown context code {code:?}"))?;
        query = query.context(context);
    }
    for code in req.params_all("effect") {
        let effect: Effect = code
            .parse()
            .map_err(|_| format!("unknown effect code {code:?}"))?;
        query = query.effect(effect);
    }
    if let Some(name) = req.param("msr") {
        let msr: MsrName = name
            .parse()
            .map_err(|_| format!("unknown MSR name {name:?}"))?;
        query = query.msr(msr);
    }
    if let Some(text) = req.param("workaround") {
        query = query.workaround(parse_workaround(text)?);
    }
    if let Some(text) = req.param("fix") {
        query = query.fix(parse_fix(text)?);
    }
    if let Some(text) = req.param("after") {
        query = query.disclosed_after(parse_date("after", text)?);
    }
    if let Some(text) = req.param("before") {
        query = query.disclosed_before(parse_date("before", text)?);
    }
    let min = parse_usize(req, "min-triggers", 0)?;
    if min > 0 {
        query = query.min_triggers(min);
    }
    if bool_param(req, "unique")? {
        query = query.unique_only();
    }
    if bool_param(req, "annotated")? {
        query = query.annotated_only();
    }
    Ok(query)
}

fn parse_date(name: &str, text: &str) -> Result<Date, String> {
    text.parse()
        .map_err(|_| format!("invalid {name} date {text:?} (use YYYY-MM-DD)"))
}

fn parse_usize(req: &Request, name: &str, default: usize) -> Result<usize, String> {
    match req.param(name) {
        None => Ok(default),
        Some(text) => text
            .parse()
            .map_err(|_| format!("invalid {name} value {text:?} (expected a number)")),
    }
}

fn bool_param(req: &Request, name: &str) -> Result<bool, String> {
    match req.param(name) {
        None => Ok(false),
        Some("" | "1" | "true") => Ok(true),
        Some("0" | "false") => Ok(false),
        Some(other) => Err(format!(
            "invalid {name} value {other:?} (use 1/true or 0/false)"
        )),
    }
}

/// The engine a request selects: indexed unless `?engine=scan`.
///
/// # Errors
///
/// Returns the 400 body text for unknown engine names.
pub fn parse_engine(req: &Request) -> Result<QueryEngine, String> {
    match req.param("engine") {
        None => Ok(QueryEngine::default()),
        Some(text) => text.parse(),
    }
}

/// The `/query` body: hit count, then up to `limit` entry lines.
///
/// Line format matches the CLI `query` command so the two surfaces stay
/// diffable.
pub fn render_query_body(hits: &[&DbEntry], limit: usize) -> String {
    let mut out = format!("{} matching errata\n", hits.len());
    for entry in hits.iter().take(limit) {
        out.push_str(&format!(
            "{}  {}  [{}]\n",
            entry.id(),
            entry.erratum.title,
            entry.provenance.disclosure_date
        ));
    }
    out
}

/// The `/count` body: the bare count.
pub fn render_count_body(count: usize) -> String {
    format!("{count}\n")
}

/// The `/stats` body: snapshot identity as JSON (deterministic per
/// generation).
pub fn render_stats_body(snapshot: &LoadedSnapshot) -> String {
    format!(
        "{{\"generation\":{},\"format\":\"{}\",\"entries\":{},\"unique_bugs\":{}}}\n",
        snapshot.generation,
        snapshot.format,
        snapshot.db.len(),
        snapshot.db.unique_count()
    )
}

/// Dispatches one parsed request. Pure except for `/reload` (publishes a
/// new snapshot generation), `/shutdown` (sets the flag), and `/slow`
/// (sleeps — the test fixture for deadline and shed behavior).
pub fn respond(req: &Request, ctx: &RouteCtx<'_>) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/query") => match (parse_query(req), parse_engine(req), limit_param(req)) {
            (Ok(query), Ok(engine), Ok(limit)) => {
                let snapshot = ctx.state.snapshot();
                let hits = query.run_with(&snapshot.db, engine);
                Response::text(200, render_query_body(&hits, limit))
            }
            (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => bad_request(e),
        },
        ("GET", "/count") => match (parse_query(req), parse_engine(req)) {
            (Ok(query), Ok(engine)) => {
                let snapshot = ctx.state.snapshot();
                Response::text(
                    200,
                    render_count_body(query.count_with(&snapshot.db, engine)),
                )
            }
            (Err(e), _) | (_, Err(e)) => bad_request(e),
        },
        ("GET", "/stats") => Response::json(200, render_stats_body(&ctx.state.snapshot())),
        ("GET", "/metrics") => Response::json(200, rememberr_obs::snapshot().to_json() + "\n"),
        ("POST", "/reload") => match ctx.state.reload() {
            Ok(next) => Response::text(
                200,
                format!(
                    "reloaded generation {} ({} entries)\n",
                    next.generation,
                    next.db.len()
                ),
            ),
            Err(e) => Response::text(503, format!("reload failed: {e}\n")),
        },
        ("POST", "/shutdown") => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            Response::text(200, "shutting down\n").closing()
        }
        ("GET", "/slow") if ctx.slow_endpoint => match parse_usize(req, "ms", 100) {
            Ok(ms) => {
                std::thread::sleep(Duration::from_millis(ms as u64));
                Response::text(200, format!("slept {ms} ms\n"))
            }
            Err(e) => bad_request(e),
        },
        (method, "/healthz" | "/query" | "/count" | "/stats" | "/metrics") if method != "GET" => {
            method_not_allowed("GET")
        }
        (method, "/reload" | "/shutdown") if method != "POST" => method_not_allowed("POST"),
        (_, path) => Response::text(404, format!("no route for {path}\n")).closing(),
    }
}

fn limit_param(req: &Request) -> Result<usize, String> {
    parse_usize(req, "limit", DEFAULT_LIMIT)
}

fn bad_request(message: String) -> Response {
    Response::text(400, format!("{message}\n"))
}

fn method_not_allowed(allow: &str) -> Response {
    let mut r = Response::text(405, format!("method not allowed (use {allow})\n"));
    r.extra_headers.insert("Allow", allow.to_string());
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn request(target: &str) -> Request {
        let (path, raw_query) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        Request {
            method: "GET".into(),
            path: path.into(),
            params: crate::http::parse_query_string(raw_query).unwrap(),
            close: false,
            arrived: Instant::now(),
        }
    }

    #[test]
    fn query_params_mirror_the_cli_options() {
        let req = request(
            "/query?vendor=intel&workaround=bios&fix=no-fix-planned&after=2016-01-01&unique=1",
        );
        let query = parse_query(&req).unwrap();
        let debug = format!("{query:?}");
        for field in ["Intel", "Bios", "NoFixPlanned", "2016", "unique_only: true"] {
            assert!(debug.contains(field), "{field} missing from {debug}");
        }
    }

    #[test]
    fn unknown_parameters_and_values_are_rejected_with_context() {
        let err = parse_query(&request("/query?vendour=intel")).unwrap_err();
        assert!(err.contains("vendour"), "{err}");
        assert!(err.contains("vendor"), "lists valid names: {err}");
        let err = parse_query(&request("/query?vendor=via")).unwrap_err();
        assert!(err.contains("intel"), "{err}");
        let err = parse_query(&request("/query?after=soon")).unwrap_err();
        assert!(err.contains("YYYY-MM-DD"), "{err}");
        let err = parse_query(&request("/query?unique=maybe")).unwrap_err();
        assert!(err.contains("unique"), "{err}");
        let err = parse_query(&request("/query?min-triggers=lots")).unwrap_err();
        assert!(err.contains("min-triggers"), "{err}");
    }

    #[test]
    fn engine_defaults_to_indexed_and_accepts_scan() {
        assert_eq!(
            parse_engine(&request("/query")).unwrap(),
            QueryEngine::Indexed
        );
        assert_eq!(
            parse_engine(&request("/query?engine=scan")).unwrap(),
            QueryEngine::Scan
        );
        assert!(parse_engine(&request("/query?engine=fast")).is_err());
    }

    #[test]
    fn render_bodies_are_stable() {
        assert_eq!(render_count_body(42), "42\n");
        assert_eq!(render_query_body(&[], 20), "0 matching errata\n");
    }
}
