//! Request deadlines and admission limits.
//!
//! Admission control has two layers with distinct failure modes:
//!
//! * **Queue depth** (503) — refused *before* any work: the bounded accept
//!   queue is full, so the acceptor writes `503 Retry-After` and closes.
//!   The client should retry; nothing was executed.
//! * **Deadline** (504) — refused *during* work: the request spent its
//!   budget queued or executing. The budget for a connection's first
//!   request starts at accept time, so queue wait counts against it —
//!   a saturated server times out stale work instead of serving requests
//!   whose clients have long since given up.

use std::time::{Duration, Instant};

/// A per-request time budget, checked at stage boundaries.
///
/// The handler checks after parse and after execute; an expired deadline
/// turns the response into a `504` and closes the connection. Checks at
/// boundaries (rather than preemption) keep the worker loop simple: a
/// single request can overrun by at most one stage.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    start: Instant,
    budget: Duration,
}

impl Deadline {
    /// A deadline of `budget` counted from `start`.
    pub fn starting(start: Instant, budget: Duration) -> Self {
        Deadline { start, budget }
    }

    /// A deadline of `budget` counted from now.
    pub fn new(budget: Duration) -> Self {
        Deadline::starting(Instant::now(), budget)
    }

    /// Whether the budget is spent.
    pub fn expired(&self) -> bool {
        self.start.elapsed() >= self.budget
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.budget.saturating_sub(self.start.elapsed())
    }

    /// Nanoseconds elapsed since the deadline started.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_deadline_has_budget_left() {
        let d = Deadline::new(Duration::from_secs(60));
        assert!(!d.expired());
        assert!(d.remaining() > Duration::from_secs(59));
    }

    #[test]
    fn deadline_counts_from_its_start_instant() {
        let past = Instant::now() - Duration::from_millis(50);
        let d = Deadline::starting(past, Duration::from_millis(10));
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
        assert!(d.elapsed_ns() >= 50_000_000);
    }
}
