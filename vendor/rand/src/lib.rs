//! Vendored stand-in for the `rand` 0.9 API surface this workspace uses:
//! [`RngCore`], [`SeedableRng`] (with the splitmix64-based `seed_from_u64`),
//! the [`Rng`] extension trait (`random`, `random_range`, `random_bool`),
//! and the [`seq`] helpers (`SliceRandom::shuffle`, `IndexedRandom::choose`).
//!
//! Determinism contract: for a fixed generator implementation and seed, all
//! sampling here is a pure function of the output stream, so repeated runs
//! produce identical draws. The streams do NOT match the upstream `rand`
//! crate's (distribution code differs), which is fine for this workspace —
//! every expectation is derived from our own seeded runs.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed material, typically a byte array.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with splitmix64 —
    /// the same expansion upstream uses, so nearby seeds still yield
    /// well-separated states.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their full value range via [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 16) as u16
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types [`Rng::random_range`] can produce. Mirrors upstream's
/// `SampleUniform`; a single generic impl per range shape is what lets
/// type inference resolve integer literals in range expressions at the
/// call site.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[low, high)` (or `[low, high]` when
    /// `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// Draws uniformly from `[0, bound)` by rejection sampling (no modulo bias).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Largest multiple of `bound` that fits in u64; reject draws above it.
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128 - low as i128
                    + if inclusive { 1 } else { 0 }) as u64;
                let off = uniform_u64_below(rng, span);
                (low as i128 + off as i128) as $t
            }
        }
    )*};
}

sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                let unit = <$t as Standard>::sample(rng);
                low + unit * (high - low)
            }
        }
    )*};
}

sample_uniform_float!(f32, f64);

/// Range shapes accepted by [`Rng::random_range`]. The output type is a
/// trait parameter (as in upstream rand) so integer literals in ranges
/// infer their width from the call site.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_between(rng, start, end, true)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's full range (or `[0, 1)` for
    /// floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-sampling helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{uniform_u64_below, RngCore};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Random element selection from indexable collections.
    pub trait IndexedRandom {
        /// The element type.
        type Output;

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = uniform_u64_below(rng, self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::{IndexedRandom, SliceRandom};
    use super::*;

    /// Tiny deterministic generator for exercising the trait plumbing.
    struct XorShift(u64);

    impl RngCore for XorShift {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    impl SeedableRng for XorShift {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            let v = u64::from_le_bytes(seed);
            XorShift(if v == 0 { 1 } else { v })
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_seed_sensitive() {
        let mut a = XorShift::seed_from_u64(9);
        let mut b = XorShift::seed_from_u64(9);
        let mut c = XorShift::seed_from_u64(10);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = XorShift::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.random_range(1..=3u32);
            assert!((1..=3).contains(&w));
            let f = rng.random_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut rng = XorShift::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..=3usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_respects_extremes() {
        let mut rng = XorShift::seed_from_u64(3);
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
        let hits = (0..2000).filter(|_| rng.random_bool(0.5)).count();
        assert!((700..1300).contains(&hits), "p=0.5 gave {hits}/2000");
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = XorShift::seed_from_u64(4);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = XorShift::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left input unchanged");
    }

    #[test]
    fn choose_on_empty_is_none() {
        let mut rng = XorShift::seed_from_u64(6);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [7u32];
        assert_eq!(one.choose(&mut rng), Some(&7));
    }
}
