//! Vendored stand-in for `serde`, built from scratch for offline use.
//!
//! The real `serde` streams values through a `Serializer`/`Deserializer`
//! pair; this stub routes everything through an owned [`Value`] tree
//! instead, which is all the workspace needs (its only data format is
//! JSON, provided by the sibling `serde_json` stub). The public surface
//! mirrors the subset of serde the workspace uses:
//!
//! * `#[derive(Serialize, Deserialize)]` on structs and enums (via the
//!   sibling `serde_derive` proc-macro crate, re-exported under the
//!   `derive` feature);
//! * the `#[serde(default)]` field attribute;
//! * `Serialize`/`Deserialize` implementations for the standard types the
//!   workspace serializes (integers, floats, `bool`, `char`, strings,
//!   tuples, arrays, `Vec`, `Option`, `Box`, and string-keyed maps).
//!
//! The traits themselves are intentionally simpler than upstream serde:
//! `Serialize::to_value` and `Deserialize::from_value` convert to and from
//! [`Value`]. Hand-written impls (e.g. `CategorySet` in the model crate)
//! implement these two methods directly.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree value: the JSON data model.
///
/// Object fields keep insertion order (like streaming serializers do), so
/// struct round-trips are byte-stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Value {
    /// The fields of an object, if this is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field of an object by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v))
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(message: impl fmt::Display) -> Self {
        DeError {
            message: message.to_string(),
        }
    }

    /// Creates a "expected X, found Y" mismatch error.
    pub fn mismatch(expected: &str, found: &Value) -> Self {
        DeError::custom(format!("expected {expected}, found {}", found.kind()))
    }

    /// Creates a missing-field error.
    pub fn missing(field: &str) -> Self {
        DeError::custom(format!("missing field `{field}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] naming the first shape mismatch.
    fn from_value(value: &Value) -> Result<Self, DeError>;

    /// Called by derived struct impls when a field is absent.
    ///
    /// The default errors; `Option` overrides it to produce `None`, which
    /// mirrors upstream serde's treatment of optional fields.
    ///
    /// # Errors
    ///
    /// Returns a missing-field [`DeError`] unless overridden.
    fn missing_field(field: &'static str) -> Result<Self, DeError> {
        Err(DeError::missing(field))
    }
}

/// Compatibility alias module mirroring `serde::de`.
pub mod de {
    pub use crate::DeError as Error;

    /// Owned deserialization — identical to [`crate::Deserialize`] in this
    /// value-based implementation.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(u64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Number(Number::PosInt(n)) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range"))),
                    other => Err(DeError::mismatch("unsigned integer", other)),
                }
            }
        }
    )+};
}
impl_unsigned!(u8, u16, u32);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::PosInt(*self))
    }
}
impl Deserialize for u64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Number(Number::PosInt(n)) => Ok(*n),
            other => Err(DeError::mismatch("unsigned integer", other)),
        }
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Number(Number::PosInt(*self as u64))
    }
}
impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        u64::from_value(value).and_then(|n| {
            usize::try_from(n).map_err(|_| DeError::custom(format!("{n} out of range")))
        })
    }
}

macro_rules! impl_signed {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v < 0 {
                    Value::Number(Number::NegInt(v))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: i64 = match value {
                    Value::Number(Number::PosInt(n)) => i64::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range")))?,
                    Value::Number(Number::NegInt(n)) => *n,
                    other => return Err(DeError::mismatch("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| DeError::custom(format!("{wide} out of range")))
            }
        }
    )+};
}
impl_signed!(i8, i16, i32);

impl Serialize for i64 {
    fn to_value(&self) -> Value {
        if *self < 0 {
            Value::Number(Number::NegInt(*self))
        } else {
            Value::Number(Number::PosInt(*self as u64))
        }
    }
}
impl Deserialize for i64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Number(Number::PosInt(n)) => {
                i64::try_from(*n).map_err(|_| DeError::custom(format!("{n} out of range")))
            }
            Value::Number(Number::NegInt(n)) => Ok(*n),
            other => Err(DeError::mismatch("integer", other)),
        }
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}
impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        i64::from_value(value).and_then(|n| {
            isize::try_from(n).map_err(|_| DeError::custom(format!("{n} out of range")))
        })
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}
impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Number(Number::Float(x)) => Ok(*x),
            Value::Number(Number::PosInt(n)) => Ok(*n as f64),
            Value::Number(Number::NegInt(n)) => Ok(*n as f64),
            other => Err(DeError::mismatch("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}
impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::mismatch("boolean", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::mismatch("single-character string", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom(format!(
                "expected single-character string, found {s:?}"
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::mismatch("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(()),
            other => Err(DeError::mismatch("null", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Reference / container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_field: &'static str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::mismatch("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let vec = Vec::<T>::from_value(value)?;
        let len = vec.len();
        <[T; N]>::try_from(vec)
            .map_err(|_| DeError::custom(format!("expected array of {N} elements, found {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                const ARITY: usize = [$($idx as usize),+].len();
                let items = value
                    .as_array()
                    .ok_or_else(|| DeError::mismatch("tuple array", value))?;
                if items.len() != ARITY {
                    return Err(DeError::custom(format!(
                        "expected tuple of {ARITY}, found array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::mismatch("object", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic, like a BTreeMap.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::mismatch("object", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

// ---------------------------------------------------------------------------
// Helpers used by derive-generated code
// ---------------------------------------------------------------------------

/// Support machinery for `serde_derive`-generated code. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{DeError, Deserialize, Value};

    /// Looks up a struct field by name in an object's field list.
    pub fn find<'v>(fields: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
        fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Deserializes a field, routing absence through
    /// [`Deserialize::missing_field`].
    ///
    /// # Errors
    ///
    /// Propagates the field's deserialization error.
    pub fn field<T: Deserialize>(
        fields: &[(String, Value)],
        name: &'static str,
    ) -> Result<T, DeError> {
        match find(fields, name) {
            Some(value) => {
                T::from_value(value).map_err(|e| DeError::custom(format!("field `{name}`: {e}")))
            }
            None => T::missing_field(name),
        }
    }

    /// Deserializes a field, substituting `Default::default()` when absent
    /// (the `#[serde(default)]` attribute).
    ///
    /// # Errors
    ///
    /// Propagates the field's deserialization error.
    pub fn field_or_default<T: Deserialize + Default>(
        fields: &[(String, Value)],
        name: &'static str,
    ) -> Result<T, DeError> {
        match find(fields, name) {
            Some(value) => {
                T::from_value(value).map_err(|e| DeError::custom(format!("field `{name}`: {e}")))
            }
            None => Ok(T::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
    }

    #[test]
    fn numbers_cross_convert() {
        // An integral float parses as int; ints deserialize into f64.
        assert_eq!(
            f64::from_value(&Value::Number(Number::PosInt(3))).unwrap(),
            3.0
        );
        assert_eq!(
            f64::from_value(&Value::Number(Number::NegInt(-3))).unwrap(),
            -3.0
        );
    }

    #[test]
    fn option_missing_field_is_none() {
        assert_eq!(Option::<u32>::missing_field("x").unwrap(), None);
        assert!(u32::missing_field("x").is_err());
    }

    #[test]
    fn container_roundtrip() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let round: Vec<(u32, String)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(round, v);

        let mut map = BTreeMap::new();
        map.insert("k".to_string(), 9u64);
        let round: BTreeMap<String, u64> = Deserialize::from_value(&map.to_value()).unwrap();
        assert_eq!(round, map);
    }

    #[test]
    fn mismatches_are_reported() {
        let err = u32::from_value(&Value::String("x".into())).unwrap_err();
        assert!(err.to_string().contains("expected unsigned integer"));
        let err = Vec::<u32>::from_value(&Value::Null).unwrap_err();
        assert!(err.to_string().contains("expected array"));
    }

    #[test]
    fn out_of_range_is_rejected() {
        let big = Value::Number(Number::PosInt(u64::MAX));
        assert!(u8::from_value(&big).is_err());
        assert!(i64::from_value(&big).is_err());
    }
}
