//! Vendored stand-in for the `criterion` API surface this workspace uses:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] (`sample_size`,
//! `throughput`, `bench_function`, `finish`), [`Bencher`] (`iter`,
//! `iter_batched`), [`Throughput`], [`BatchSize`], and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each `iter` call self-calibrates a batch size so one
//! sample takes ≥ ~1 ms, then records `sample_size` samples and reports
//! median / min / mean nanoseconds per iteration on stdout. No plotting,
//! no statistical regression — adequate for the relative comparisons the
//! workspace's benches make.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Input size in bytes per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Hint for how `iter_batched` should amortize setup; accepted for API
/// compatibility, the harness always pre-builds one batch per sample.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Few iterations per batch (large per-iteration state).
    LargeInput,
    /// Many iterations per batch (small per-iteration state).
    SmallInput,
    /// One iteration per batch.
    PerIteration,
}

/// Timing statistics for one benchmark, in nanoseconds per iteration.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Median across samples.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Mean across samples.
    pub mean_ns: f64,
}

/// Measures one benchmark body over calibrated samples.
pub struct Bencher {
    sample_size: usize,
    stats: Option<Stats>,
}

const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(1);
const MAX_CALIBRATION_ITERS: u64 = 1 << 22;

impl Bencher {
    /// Times `f`, excluding nothing; the routine's return value is passed
    /// through `black_box` so it is not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: double the batch until one batch takes long enough to
        // time reliably.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE_TIME || iters >= MAX_CALIBRATION_ITERS {
                break;
            }
            iters = iters.saturating_mul(2);
        }

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.stats = Some(summarize(&mut samples));
    }

    /// Times `routine` over inputs produced by `setup`; setup cost is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate with a small fixed batch (setup may be expensive).
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 12 {
                break;
            }
            iters = iters.saturating_mul(2);
        }

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.stats = Some(summarize(&mut samples));
    }
}

fn summarize(samples: &mut [f64]) -> Stats {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let min_ns = samples.first().copied().unwrap_or(0.0);
    let median_ns = samples[samples.len() / 2];
    let mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
    Stats {
        median_ns,
        min_ns,
        mean_ns,
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates the group with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark and prints its result. Skipped (body never runs)
    /// when a command-line filter is set and the `group/id` name does not
    /// contain it.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !self.criterion.matches(&format!("{}/{}", self.name, id)) {
            return self;
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            stats: None,
        };
        f(&mut bencher);
        let stats = bencher.stats.unwrap_or_default();
        let full_name = format!("{}/{}", self.name, id);
        self.criterion.record(&full_name, stats, self.throughput);
        self
    }

    /// Ends the group (kept for API compatibility; results print as they
    /// complete).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    /// All results recorded so far, in execution order.
    results: Vec<(String, Stats)>,
    /// Substring filter from the command line; non-matching benchmarks are
    /// skipped entirely (their bodies never run).
    filter: Option<String>,
}

impl Criterion {
    /// Builds a harness honoring the standard `cargo bench -- FILTER`
    /// convention: the first non-flag argument is a substring filter on
    /// `group/benchmark` names.
    #[must_use]
    pub fn from_args() -> Self {
        Self {
            results: Vec::new(),
            filter: std::env::args().skip(1).find(|arg| !arg.starts_with('-')),
        }
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 100,
            throughput: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }

    /// Results recorded so far (name, statistics), in execution order.
    #[must_use]
    pub fn results(&self) -> &[(String, Stats)] {
        &self.results
    }

    fn record(&mut self, name: &str, stats: Stats, throughput: Option<Throughput>) {
        let mut line = format!(
            "{name:<50} median {:>12.1} ns/iter  (min {:.1}, mean {:.1})",
            stats.median_ns, stats.min_ns, stats.mean_ns
        );
        if let Some(Throughput::Bytes(bytes)) = throughput {
            if stats.median_ns > 0.0 {
                let gib_s = bytes as f64 / stats.median_ns; // bytes/ns == GB/s
                line.push_str(&format!("  {gib_s:>8.3} GB/s"));
            }
        }
        println!("{line}");
        self.results.push((name.to_string(), stats));
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_positive_timings() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.finish();
        let results = c.results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, "smoke/sum");
        assert!(results[0].1.median_ns > 0.0);
        assert!(results[0].1.min_ns <= results[0].1.median_ns);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion {
            results: Vec::new(),
            filter: Some("parallel".to_string()),
        };
        let mut ran = Vec::new();
        {
            let mut group = c.benchmark_group("parallel");
            group.sample_size(2);
            group.bench_function("hit", |b| {
                ran.push("hit");
                b.iter(|| 1 + 1);
            });
            group.finish();
        }
        {
            let mut group = c.benchmark_group("dedup");
            group.sample_size(2);
            group.bench_function("miss", |b| {
                ran.push("miss");
                b.iter(|| 1 + 1);
            });
            group.finish();
        }
        assert_eq!(ran, ["hit"]);
        assert_eq!(c.results().len(), 1);
        assert_eq!(c.results()[0].0, "parallel/hit");
    }

    #[test]
    fn iter_batched_consumes_setup_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.bench_function("reverse", |b| {
            b.iter_batched(
                || (0..64u32).collect::<Vec<_>>(),
                |mut v| {
                    v.reverse();
                    v
                },
                BatchSize::SmallInput,
            );
        });
        group.finish();
        assert!(c.results()[0].1.median_ns > 0.0);
    }
}
