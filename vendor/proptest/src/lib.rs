//! Vendored stand-in for the `proptest` API surface this workspace uses.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the panic directly; the
//!   values that triggered it appear in the assertion message instead of a
//!   minimized counterexample.
//! * **Deterministic seeding.** Case `i` of every test derives its RNG from
//!   a fixed base seed and `i`, so runs are reproducible by construction
//!   (no persistence files needed).
//! * **Regex subset.** String strategies support the subset the workspace
//!   uses: literals, `.`, character classes (ranges + `\xNN`/control
//!   escapes), groups, and `{m}`/`{m,n}`/`?`/`*`/`+` quantifiers. No
//!   alternation outside classes.

#![forbid(unsafe_code)]

/// Deterministic RNG and run-loop plumbing.
pub mod test_runner {
    /// Per-test configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A small deterministic generator (splitmix64) for strategy sampling.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the RNG for one test case; the stream depends only on
        /// `case_index`.
        #[must_use]
        pub fn for_case(case_index: u64) -> Self {
            TestRng {
                state: 0x51ED_C0DE_2022_0000 ^ case_index.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound == 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling bound");
            if bound.is_power_of_two() {
                return self.next_u64() & (bound - 1);
            }
            let zone = u64::MAX - (u64::MAX % bound) - 1;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }
    }

    /// Drives a property body over `config.cases` deterministic cases.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Builds a runner with the given configuration.
        #[must_use]
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Runs `case` once per configured case with a fresh deterministic
        /// RNG each time.
        pub fn run_cases(&mut self, mut case: impl FnMut(&mut TestRng)) {
            for i in 0..self.config.cases {
                let mut rng = TestRng::for_case(u64::from(i));
                case(&mut rng);
            }
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let off = rng.below(span);
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // 53 random bits give a uniform draw in [0, 1).
                    let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_matching(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over `T`'s full value range.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-exclusive length bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                start: len,
                end: len + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Generation of strings matching a regex subset.
pub mod string {
    use crate::test_runner::TestRng;

    /// A repetition bound attached to an atom.
    #[derive(Clone, Copy, Debug)]
    struct Quant {
        min: usize,
        max: usize,
    }

    const UNBOUNDED_CAP: usize = 8;

    #[derive(Clone, Debug)]
    enum Atom {
        Literal(char),
        /// `.` — any printable character (no newline).
        Any,
        /// A character class as inclusive ranges.
        Class(Vec<(char, char)>),
        Group(Vec<(Atom, Quant)>),
    }

    struct Parser<'a> {
        chars: std::iter::Peekable<std::str::Chars<'a>>,
        pattern: &'a str,
    }

    impl<'a> Parser<'a> {
        fn fail(&self, what: &str) -> ! {
            panic!("unsupported regex strategy {:?}: {what}", self.pattern);
        }

        fn sequence(&mut self, in_group: bool) -> Vec<(Atom, Quant)> {
            let mut out = Vec::new();
            loop {
                match self.chars.peek().copied() {
                    None => {
                        if in_group {
                            self.fail("unterminated group");
                        }
                        return out;
                    }
                    Some(')') if in_group => {
                        self.chars.next();
                        return out;
                    }
                    Some(_) => {
                        let atom = self.atom();
                        let quant = self.quantifier();
                        out.push((atom, quant));
                    }
                }
            }
        }

        fn atom(&mut self) -> Atom {
            match self.chars.next() {
                Some('.') => Atom::Any,
                Some('[') => Atom::Class(self.class_body()),
                Some('(') => Atom::Group(self.sequence(true)),
                Some('\\') => Atom::Literal(self.escape()),
                Some(c @ (')' | ']' | '{' | '}' | '?' | '*' | '+' | '|')) => {
                    self.fail(&format!("unexpected `{c}`"))
                }
                Some(c) => Atom::Literal(c),
                None => self.fail("empty atom"),
            }
        }

        fn escape(&mut self) -> char {
            match self.chars.next() {
                Some('n') => '\n',
                Some('r') => '\r',
                Some('t') => '\t',
                Some('x') => {
                    let hi = self.hex_digit();
                    let lo = self.hex_digit();
                    char::from_u32(hi * 16 + lo).unwrap_or_else(|| self.fail("bad \\x escape"))
                }
                Some(
                    c @ ('\\' | '.' | '[' | ']' | '(' | ')' | '{' | '}' | '?' | '*' | '+' | '|'
                    | '-' | ' '),
                ) => c,
                Some(c) => self.fail(&format!("unsupported escape \\{c}")),
                None => self.fail("dangling backslash"),
            }
        }

        fn hex_digit(&mut self) -> u32 {
            self.chars
                .next()
                .and_then(|c| c.to_digit(16))
                .unwrap_or_else(|| self.fail("bad hex digit"))
        }

        fn class_body(&mut self) -> Vec<(char, char)> {
            let mut ranges = Vec::new();
            loop {
                let lo = match self.chars.next() {
                    None => self.fail("unterminated class"),
                    Some(']') => {
                        if ranges.is_empty() {
                            self.fail("empty class");
                        }
                        return ranges;
                    }
                    Some('\\') => self.escape(),
                    Some(c) => c,
                };
                // `x-y` is a range unless `-` is the last char before `]`.
                if self.chars.peek() == Some(&'-') {
                    let mut ahead = self.chars.clone();
                    ahead.next();
                    if ahead.peek().is_some_and(|&c| c != ']') {
                        self.chars.next(); // consume `-`
                        let hi = match self.chars.next() {
                            Some('\\') => self.escape(),
                            Some(c) => c,
                            None => self.fail("unterminated range"),
                        };
                        if lo > hi {
                            self.fail("inverted class range");
                        }
                        ranges.push((lo, hi));
                        continue;
                    }
                }
                ranges.push((lo, lo));
            }
        }

        fn quantifier(&mut self) -> Quant {
            match self.chars.peek().copied() {
                Some('?') => {
                    self.chars.next();
                    Quant { min: 0, max: 1 }
                }
                Some('*') => {
                    self.chars.next();
                    Quant {
                        min: 0,
                        max: UNBOUNDED_CAP,
                    }
                }
                Some('+') => {
                    self.chars.next();
                    Quant {
                        min: 1,
                        max: UNBOUNDED_CAP,
                    }
                }
                Some('{') => {
                    self.chars.next();
                    let min = self.number();
                    let max = match self.chars.next() {
                        Some('}') => min,
                        Some(',') => {
                            let max = self.number();
                            match self.chars.next() {
                                Some('}') => max,
                                _ => self.fail("unterminated quantifier"),
                            }
                        }
                        _ => self.fail("malformed quantifier"),
                    };
                    if min > max {
                        self.fail("inverted quantifier");
                    }
                    Quant { min, max }
                }
                _ => Quant { min: 1, max: 1 },
            }
        }

        fn number(&mut self) -> usize {
            let mut digits = String::new();
            while let Some(c) = self.chars.peek() {
                if c.is_ascii_digit() {
                    digits.push(*c);
                    self.chars.next();
                } else {
                    break;
                }
            }
            digits
                .parse()
                .unwrap_or_else(|_| self.fail("expected number"))
        }
    }

    /// Occasional non-ASCII picks for `.` so char-boundary handling gets
    /// exercised.
    const WIDE_CHARS: [char; 6] = ['é', 'ü', 'Ω', '→', '☂', '😀'];

    fn emit(atoms: &[(Atom, Quant)], rng: &mut TestRng, out: &mut String) {
        for (atom, quant) in atoms {
            let span = (quant.max - quant.min) as u64;
            let reps = quant.min
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            for _ in 0..reps {
                match atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Any => {
                        if rng.below(16) == 0 {
                            out.push(WIDE_CHARS[rng.below(WIDE_CHARS.len() as u64) as usize]);
                        } else {
                            // Printable ASCII 0x20..=0x7e.
                            out.push(char::from(0x20 + rng.below(0x5f) as u8));
                        }
                    }
                    Atom::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|&(lo, hi)| u64::from(hi as u32 - lo as u32) + 1)
                            .sum();
                        let mut pick = rng.below(total);
                        for &(lo, hi) in ranges {
                            let width = u64::from(hi as u32 - lo as u32) + 1;
                            if pick < width {
                                let c = char::from_u32(lo as u32 + pick as u32)
                                    .expect("class range stays in valid chars");
                                out.push(c);
                                break;
                            }
                            pick -= width;
                        }
                    }
                    Atom::Group(inner) => emit(inner, rng, out),
                }
            }
        }
    }

    /// Generates one string matching `pattern` (see module docs for the
    /// supported subset).
    ///
    /// # Panics
    ///
    /// Panics if `pattern` uses syntax outside the supported subset.
    pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
        let mut parser = Parser {
            chars: pattern.chars().peekable(),
            pattern,
        };
        let atoms = parser.sequence(false);
        let mut out = String::new();
        emit(&atoms, rng, &mut out);
        out
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced module access, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($config);
            runner.run_cases(|__proptest_rng| {
                $(let $parm = $crate::strategy::Strategy::generate(&($strategy), __proptest_rng);)+
                $body
            });
        }
        $crate::__proptest_impl!(($config) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..200 {
            let s = crate::string::generate_matching("[A-Za-z][A-Za-z0-9 ]{0,40}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 41 + 1);
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());

            let t = crate::string::generate_matching("[\\x20-\\x7e\\n\\x0c]{0,20}", &mut rng);
            assert!(t
                .chars()
                .all(|c| ('\x20'..='\x7e').contains(&c) || c == '\n' || c == '\x0c'));

            let g = crate::string::generate_matching("[a-c]{1,3}( [a-c]{1,3}){0,2}", &mut rng);
            for word in g.split(' ') {
                assert!((1..=3).contains(&word.len()), "{g:?}");
                assert!(word.chars().all(|c| ('a'..='c').contains(&c)));
            }
        }
    }

    #[test]
    fn determinism_per_case_index() {
        let mut a = TestRng::for_case(5);
        let mut b = TestRng::for_case(5);
        let sa = crate::string::generate_matching(".{0,40}", &mut a);
        let sb = crate::string::generate_matching(".{0,40}", &mut b);
        assert_eq!(sa, sb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_compose(a in 0usize..10, pair in ((1u32..4), (0i64..3))) {
            prop_assert!(a < 10);
            prop_assert!((1..4).contains(&pair.0));
            prop_assert!((0..3).contains(&pair.1));
        }

        #[test]
        fn oneof_vec_and_map_work(
            v in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 0..5),
            flag in any::<bool>(),
            trailing in 0usize..3,
        ) {
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
            let _ = flag;
            let mapped = (0usize..4).prop_map(|x| x * 2);
            let m = Strategy::generate(&mapped, &mut TestRng::for_case(trailing as u64));
            prop_assert!(m % 2 == 0 && m < 8);
        }
    }
}
