//! Vendored stand-in for `rand_chacha`: [`ChaCha8Rng`], a genuine ChaCha
//! (8-round) keystream generator wired to the vendored `rand` traits.
//!
//! The block function follows RFC 7539's state layout (constants, 256-bit
//! key, 64-bit counter + 64-bit nonce) with 4 double-rounds. Output word
//! order matches the keystream order, so draws are fully deterministic for
//! a given seed — which is all the workspace's seeded corpus generation
//! relies on.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;
const BLOCK_WORDS: usize = 16;

/// A deterministic ChaCha8 random number generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words 0..8 of the initial state (state rows 1–2).
    key: [u32; 8],
    /// 64-bit block counter (state words 12–13).
    counter: u64,
    /// Current keystream block.
    block: [u32; BLOCK_WORDS],
    /// Next unread word index within `block`; `BLOCK_WORDS` = exhausted.
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;

        let mut working = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn stream_crosses_block_boundaries() {
        // 16 words per block; draw well past several refills.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let draws: Vec<u32> = (0..100).map(|_| rng.next_u32()).collect();
        let distinct: std::collections::HashSet<_> = draws.iter().collect();
        assert!(distinct.len() > 90, "keystream should not repeat");
    }

    #[test]
    fn clone_preserves_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let _ = rng.next_u64();
        let mut fork = rng.clone();
        assert_eq!(rng.next_u64(), fork.next_u64());
    }

    #[test]
    fn works_through_rng_extension_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let v = rng.random_range(0..10u32);
        assert!(v < 10);
        let f: f64 = rng.random();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn rfc7539_style_block_sanity() {
        // With an all-zero key the first block must differ from the second
        // (counter increments) and be stable across constructions.
        let a = {
            let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
            (rng.next_u32(), {
                for _ in 0..15 {
                    rng.next_u32();
                }
                rng.next_u32()
            })
        };
        let b = {
            let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
            (rng.next_u32(), {
                for _ in 0..15 {
                    rng.next_u32();
                }
                rng.next_u32()
            })
        };
        assert_eq!(a, b);
        assert_ne!(a.0, a.1);
    }
}
