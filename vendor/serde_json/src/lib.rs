//! Vendored stand-in for `serde_json`, built on the value-based `serde`
//! stub: a hand-written JSON parser and emitter with the familiar
//! `to_string`/`from_str`/`to_writer` entry points.

#![forbid(unsafe_code)]

use std::fmt;
use std::io::Write;

use serde::{DeError, Deserialize, Number, Serialize};

pub use serde::Value;

/// Maximum nesting depth accepted by the parser (defence against stack
/// exhaustion on adversarial input).
const MAX_DEPTH: usize = 192;

/// Errors from JSON serialization or deserialization.
#[derive(Debug)]
pub enum Error {
    /// Malformed JSON text: message plus byte offset.
    Syntax {
        /// What went wrong.
        message: String,
        /// Byte offset into the input.
        offset: usize,
    },
    /// Structurally valid JSON that does not match the target type.
    Data(DeError),
    /// An I/O failure from `to_writer`.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Syntax { message, offset } => {
                write!(f, "JSON syntax error at byte {offset}: {message}")
            }
            Error::Data(e) => write!(f, "JSON data error: {e}"),
            Error::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::Data(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Infallible in this implementation; the `Result` mirrors upstream.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to a human-readable, indented JSON string.
///
/// # Errors
///
/// Infallible in this implementation; the `Result` mirrors upstream.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, Some("  "), 0);
    Ok(out)
}

/// Serializes a value as compact JSON into a writer.
///
/// # Errors
///
/// Returns [`Error::Io`] if the writer fails.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Parses a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error::Syntax`] for malformed JSON and [`Error::Data`] when
/// the JSON does not match `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn emit(value: &Value, out: &mut String, indent: Option<&str>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => emit_number(*n, out),
        Value::String(s) => emit_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                emit(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                emit_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, level: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str(unit);
        }
    }
}

fn emit_number(n: Number, out: &mut String) {
    match n {
        Number::PosInt(v) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
        }
        Number::NegInt(v) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
        }
        Number::Float(v) => {
            if !v.is_finite() {
                out.push_str("null"); // like upstream's lossy behavior
            } else if v == v.trunc() && v.abs() < 1e15 {
                // Keep a ".0" so the value visibly stays a float.
                let _ = fmt::Write::write_fmt(out, format_args!("{v:.1}"));
            } else {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> Error {
        Error::Syntax {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: require a matching low one.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // encoding is already valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).map_err(|_| {
                        Error::Syntax {
                            message: "invalid UTF-8".into(),
                            offset: start,
                        }
                    })?);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut unit = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            unit = unit * 16 + digit;
            self.pos += 1;
        }
        Ok(unit)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if text.is_empty() || text == "-" {
            return Err(self.err("malformed number"));
        }
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(v) = digits.parse::<i64>() {
                    return Ok(Value::Number(Number::NegInt(-v)));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<f64>("2").unwrap(), 2.0);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
    }

    #[test]
    fn strings_escape_and_roundtrip() {
        let original = "line\nwith \"quotes\", tabs\t, form\u{c}feeds and ünïcode ☂";
        let encoded = to_string(&original.to_string()).unwrap();
        let decoded: String = from_str(&encoded).unwrap();
        assert_eq!(decoded, original);
    }

    #[test]
    fn unicode_escapes_parse() {
        let decoded: String = from_str(r#""Aé😀""#).unwrap();
        assert_eq!(decoded, "Aé😀");
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<(String, f64)> = vec![("a".into(), 0.5), ("b".into(), 2.0)];
        let text = to_string(&v).unwrap();
        assert_eq!(text, r#"[["a",0.5],["b",2.0]]"#);
        let round: Vec<(String, f64)> = from_str(&text).unwrap();
        assert_eq!(round, v);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("01x").is_err());
        assert!(from_str::<Value>("{\"a\":1} extra").is_err());
        assert!(from_str::<u32>("\"nope\"").is_err());
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let text = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(from_str::<Value>(&text).is_err());
    }

    #[test]
    fn pretty_printer_is_reparsable() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3]];
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let round: Vec<Vec<u32>> = from_str(&text).unwrap();
        assert_eq!(round, v);
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
