//! Vendored stand-in for `serde_derive`, written against the value-based
//! `serde` stub in `vendor/serde`.
//!
//! Supports the shapes this workspace actually derives:
//!
//! * structs with named fields (including one generic type parameter per
//!   struct, e.g. `VendorPair<T>`), serialized as objects;
//! * newtype structs (`UniqueKey(pub u32)`), serialized transparently;
//! * enums with unit variants (serialized as the variant-name string),
//!   newtype variants (`{"Variant": value}`), and struct variants
//!   (`{"Variant": {fields...}}`) — upstream serde's externally-tagged
//!   representation;
//! * the `#[serde(default)]` field attribute.
//!
//! The implementation parses the item's token stream directly (no `syn`)
//! and emits the impl as a string, which keeps this crate dependency-free.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    default: bool,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    NamedStruct(Vec<Field>),
    NewtypeStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    generics: Vec<String>,
    shape: Shape,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&item),
        Mode::Deserialize => gen_deserialize(&item),
    };
    code.parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    pos += 1;

    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    pos += 1;

    let generics = parse_generics(&tokens, &mut pos)?;

    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(Item {
                    name,
                    generics,
                    shape: Shape::NamedStruct(fields),
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                if arity != 1 {
                    return Err(format!(
                        "serde stub derive supports only 1-field tuple structs, `{name}` has {arity}"
                    ));
                }
                Ok(Item {
                    name,
                    generics,
                    shape: Shape::NewtypeStruct,
                })
            }
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())?;
                Ok(Item {
                    name,
                    generics,
                    shape: Shape::Enum(variants),
                })
            }
            other => Err(format!("expected enum body for `{name}`, found {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Skips `#[...]` attribute sequences, returning whether any of them was
/// `#[serde(default)]`.
fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut has_default = false;
    while let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) {
            if g.delimiter() == Delimiter::Bracket {
                has_default |= is_serde_default(g.stream());
                *pos += 2;
                continue;
            }
        }
        break;
    }
    has_default
}

fn is_serde_default(attr: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(t, TokenTree::Ident(ref id) if id.to_string() == "default"))
        }
        _ => false,
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1; // pub(crate) and friends
                }
            }
        }
    }
}

/// Parses `<A, B: Bound, ...>` into the list of type-parameter names.
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> Result<Vec<String>, String> {
    let mut params = Vec::new();
    match tokens.get(*pos) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Ok(params),
    }
    *pos += 1;
    let mut depth = 1usize;
    let mut expect_param = true;
    while depth > 0 {
        let token = tokens
            .get(*pos)
            .ok_or_else(|| "unterminated generics".to_string())?;
        match token {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 1 => expect_param = true,
                ':' if depth == 1 => expect_param = false,
                '\'' => {
                    return Err("serde stub derive does not support lifetimes".to_string());
                }
                _ => {}
            },
            TokenTree::Ident(id) if depth == 1 && expect_param => {
                params.push(id.to_string());
                expect_param = false;
            }
            _ => {}
        }
        *pos += 1;
    }
    Ok(params)
}

/// Counts top-level fields of a tuple struct body.
fn tuple_arity(stream: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut angle = 0isize;
    let mut field_open = false;
    for token in stream {
        match token {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => field_open = false,
                _ => {
                    if !field_open {
                        field_open = true;
                        arity += 1;
                    }
                }
            },
            _ => {
                if !field_open {
                    field_open = true;
                    arity += 1;
                }
            }
        }
    }
    arity
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let default = skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Skip the type: tokens until a comma at angle-depth 0.
        let mut angle = 0isize;
        while let Some(token) = tokens.get(pos) {
            if let TokenTree::Punct(p) = token {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
            pos += 1;
        }
        pos += 1; // consume the comma (or run off the end)
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                if arity != 1 {
                    return Err(format!(
                        "serde stub derive supports only 1-field tuple variants, `{name}` has {arity}"
                    ));
                }
                pos += 1;
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                pos += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Consume up to and including the variant separator comma
        // (skipping any `= discriminant` expression).
        while let Some(token) = tokens.get(pos) {
            pos += 1;
            if matches!(token, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `Foo` or `Foo<T>`, plus the matching `impl<...>` parameter list.
fn impl_header(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let params = item
            .generics
            .iter()
            .map(|p| format!("{p}: {bound}"))
            .collect::<Vec<_>>()
            .join(", ");
        let args = item.generics.join(", ");
        (format!("<{params}>"), format!("{}<{args}>", item.name))
    }
}

fn gen_serialize(item: &Item) -> String {
    let (impl_params, ty) = impl_header(item, "serde::Serialize");
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "fields.push(({:?}.to_string(), serde::Serialize::to_value(&self.{})));\n",
                    f.name, f.name
                ));
            }
            format!(
                "let mut fields: Vec<(String, serde::Value)> = Vec::new();\n{pushes}serde::Value::Object(fields)"
            )
        }
        Shape::NewtypeStruct => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "Self::{} => serde::Value::String({:?}.to_string()),\n",
                        v.name, v.name
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "Self::{}(inner) => serde::Value::Object(vec![({:?}.to_string(), serde::Serialize::to_value(inner))]),\n",
                        v.name, v.name
                    )),
                    VariantKind::Struct(fields) => {
                        let bindings = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "inner.push(({:?}.to_string(), serde::Serialize::to_value({})));\n",
                                f.name, f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "Self::{} {{ {bindings} }} => {{\nlet mut inner: Vec<(String, serde::Value)> = Vec::new();\n{pushes}serde::Value::Object(vec![({:?}.to_string(), serde::Value::Object(inner))])\n}}\n",
                            v.name, v.name
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl{impl_params} serde::Serialize for {ty} {{\n\
         fn to_value(&self) -> serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (impl_params, ty) = impl_header(item, "serde::Deserialize");
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                let getter = if f.default {
                    "field_or_default"
                } else {
                    "field"
                };
                inits.push_str(&format!(
                    "{}: serde::__private::{getter}(fields, {:?})?,\n",
                    f.name, f.name
                ));
            }
            format!(
                "let fields = value.as_object().ok_or_else(|| serde::DeError::mismatch({name:?}, value))?;\n\
                 Ok(Self {{\n{inits}}})"
            )
        }
        Shape::NewtypeStruct => "serde::Deserialize::from_value(value).map(Self)".to_string(),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("{:?} => Ok(Self::{}),\n", v.name, v.name))
                    }
                    VariantKind::Newtype => data_arms.push_str(&format!(
                        "{:?} => Ok(Self::{}(serde::Deserialize::from_value(inner)?)),\n",
                        v.name, v.name
                    )),
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            let getter = if f.default {
                                "field_or_default"
                            } else {
                                "field"
                            };
                            inits.push_str(&format!(
                                "{}: serde::__private::{getter}(fields, {:?})?,\n",
                                f.name, f.name
                            ));
                        }
                        data_arms.push_str(&format!(
                            "{:?} => {{\nlet fields = inner.as_object().ok_or_else(|| serde::DeError::mismatch(\"variant object\", inner))?;\nOk(Self::{} {{\n{inits}}})\n}}\n",
                            v.name, v.name
                        ));
                    }
                }
            }
            format!(
                "match value {{\n\
                 serde::Value::String(tag) => match tag.as_str() {{\n{unit_arms}\
                 other => Err(serde::DeError::custom(format!(\"unknown {name} variant {{other:?}}\"))),\n}},\n\
                 serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                 let (tag, inner) = (&fields[0].0, &fields[0].1);\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n{data_arms}\
                 other => Err(serde::DeError::custom(format!(\"unknown {name} variant {{other:?}}\"))),\n}}\n}},\n\
                 other => Err(serde::DeError::mismatch({name:?}, other)),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl{impl_params} serde::Deserialize for {ty} {{\n\
         fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
