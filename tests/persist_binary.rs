//! Binary snapshot correctness: the `rememberr-bin/v1` columnar format
//! must be an invisible throughput knob. A binary roundtrip reproduces
//! the database the JSONL oracle reproduces, re-exported JSONL after a
//! binary roundtrip is byte-identical to JSONL written directly, the
//! binary bytes are identical at every worker count, and corruption in
//! any section is rejected instead of loading a wrong database.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

use proptest::prelude::*;
use rememberr::{load, save_as, Database, PersistError, SnapshotFormat};
use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
use rememberr_docgen::{CorpusSpec, SyntheticCorpus};

/// A fully classified database at a representative scale, built once.
fn annotated_db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.15));
        let mut db = Database::from_documents(&corpus.structured);
        classify_database(
            &mut db,
            &Rules::standard(),
            HumanOracle::Simulated(&corpus.truth),
            &FourEyesConfig::default(),
        );
        db
    })
}

fn snapshot(db: &Database, format: SnapshotFormat) -> Vec<u8> {
    let mut buf = Vec::new();
    save_as(db, &mut buf, format).expect("in-memory save succeeds");
    buf
}

proptest! {
    // Each case generates and classifies a corpus, so keep the count
    // modest; scale and seed vary the string-table shape, annotation
    // density, and chunk fill.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn binary_roundtrip_matches_jsonl_oracle(
        scale in 0.02f64..0.06,
        seed in 0u64..1_000_000,
        classify in any::<bool>(),
    ) {
        let mut spec = CorpusSpec::scaled(scale);
        spec.seed = seed;
        let corpus = SyntheticCorpus::generate(&spec);
        let mut db = Database::from_documents(&corpus.structured);
        if classify {
            classify_database(
                &mut db,
                &Rules::standard(),
                HumanOracle::Simulated(&corpus.truth),
                &FourEyesConfig::default(),
            );
        }

        let jsonl = snapshot(&db, SnapshotFormat::Jsonl);
        let binary = snapshot(&db, SnapshotFormat::Binary);
        let via_jsonl = load(jsonl.as_slice()).expect("jsonl loads");
        let via_binary = load(binary.as_slice()).expect("binary loads");
        prop_assert_eq!(&via_jsonl, &db, "the JSONL oracle roundtrips");
        prop_assert_eq!(&via_binary, &via_jsonl, "binary agrees with the oracle");
        prop_assert_eq!(via_binary.dedup_stats(), db.dedup_stats());

        // Re-exported JSONL after a binary roundtrip is byte-identical.
        let reexport = snapshot(&via_binary, SnapshotFormat::Jsonl);
        prop_assert_eq!(reexport, jsonl);

        // The binary flavor actually buys its keep: smaller than JSONL.
        prop_assert!(binary.len() < jsonl.len());
    }
}

#[test]
fn binary_bytes_identical_across_worker_counts() {
    let db = annotated_db();
    let mut snapshots = Vec::new();
    for jobs in [1usize, 2, 8] {
        rememberr_par::set_jobs(NonZeroUsize::new(jobs));
        snapshots.push((jobs, snapshot(db, SnapshotFormat::Binary)));
    }
    rememberr_par::set_jobs(None);
    let (_, reference) = &snapshots[0];
    for (jobs, bytes) in &snapshots {
        assert_eq!(
            bytes, reference,
            "binary snapshot at jobs={jobs} diverged from jobs=1"
        );
    }
    // And the bytes decode back to the database they were saved from.
    assert_eq!(&load(reference.as_slice()).unwrap(), db);
}

#[test]
fn loading_is_jobs_invariant() {
    let db = annotated_db();
    let bytes = snapshot(db, SnapshotFormat::Binary);
    for jobs in [1usize, 2, 8] {
        rememberr_par::set_jobs(NonZeroUsize::new(jobs));
        let back = load(bytes.as_slice()).unwrap();
        assert_eq!(&back, db, "decode at jobs={jobs}");
    }
    rememberr_par::set_jobs(None);
}

#[test]
fn corrupt_snapshots_are_rejected() {
    let db = annotated_db();
    let bytes = snapshot(db, SnapshotFormat::Binary);

    // Bad magic: the stream is no longer recognized as binary and the
    // JSONL fallback rejects it too.
    let mut bad_magic = bytes.clone();
    bad_magic[0] = b'Z';
    assert!(load(bad_magic.as_slice()).is_err(), "bad magic must fail");

    // A flipped byte anywhere in a section payload trips that section's
    // checksum.
    for position in [bytes.len() / 4, bytes.len() / 2, bytes.len() - 30] {
        let mut corrupted = bytes.clone();
        corrupted[position] ^= 0x40;
        let err = load(corrupted.as_slice()).unwrap_err();
        assert!(
            matches!(
                &err,
                PersistError::Corrupt(_) | PersistError::BadHeader(_) | PersistError::Io(_)
            ),
            "flip at {position}: got {err}"
        );
    }

    // A truncated section is rejected, never partially loaded.
    for keep in [bytes.len() - 1, bytes.len() / 2, 16] {
        let err = load(&bytes[..keep]).unwrap_err();
        assert!(
            matches!(err, PersistError::Corrupt(_)),
            "truncation to {keep} bytes: got {err}"
        );
    }
}

#[test]
fn truncated_jsonl_is_rejected() {
    let db = annotated_db();
    let jsonl = String::from_utf8(snapshot(db, SnapshotFormat::Jsonl)).unwrap();
    let truncated: String = jsonl
        .lines()
        .take(db.len()) // header + all but the last record
        .map(|line| format!("{line}\n"))
        .collect();
    assert!(matches!(
        load(truncated.as_bytes()),
        Err(PersistError::Truncated { expected, found })
            if expected == db.len() && found == db.len() - 1
    ));
}
