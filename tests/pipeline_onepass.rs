//! One-pass pipeline equivalence: the shared corpus-analysis arena
//! (`Database::from_documents_analyzed` → `classify_database_analyzed` →
//! `assist_highlights_analyzed`) must be indistinguishable from the
//! per-stage pipeline that re-derives lexical features in every stage —
//! byte-identical database JSON, identical `DedupStats`, `DecisionStats`
//! and assist summaries, at single- and multi-worker counts — while
//! tokenizing each database entry exactly once (the
//! `textkit.tokenize_calls` audit counter).

use std::num::NonZeroUsize;
use std::sync::Mutex;

use rememberr::{save, CandidateGen, Database, DedupStats, DedupStrategy};
use rememberr_analysis::{assist_highlights, assist_highlights_analyzed, AssistSummary};
use rememberr_classify::{
    classify_database_analyzed, classify_database_with, DecisionStats, FourEyesConfig, HumanOracle,
    MatcherKind, Rules,
};
use rememberr_docgen::{CorpusSpec, SyntheticCorpus};

/// Both tests mutate process-global state (worker count, obs counters), so
/// they serialize on this lock.
static GLOBAL: Mutex<()> = Mutex::new(());

struct RunOutput {
    db_bytes: Vec<u8>,
    dedup_stats: DedupStats,
    decision_stats: DecisionStats,
    assist: AssistSummary,
}

/// One full pipeline run (dedup → classify → assist) in either mode over
/// pre-built documents.
fn run_pipeline(corpus: &SyntheticCorpus, rules: &Rules, one_pass: bool) -> RunOutput {
    let (db, run, assist) = if one_pass {
        let (mut db, arena) = Database::from_documents_analyzed(
            &corpus.structured,
            DedupStrategy::default(),
            CandidateGen::default(),
        );
        let run = classify_database_analyzed(
            &mut db,
            rules,
            HumanOracle::Simulated(&corpus.truth),
            &FourEyesConfig::default(),
            MatcherKind::default(),
            &arena,
        );
        let assist = assist_highlights_analyzed(&db, rules, &arena);
        (db, run, assist)
    } else {
        let mut db = Database::from_documents_opts(
            &corpus.structured,
            DedupStrategy::default(),
            CandidateGen::default(),
        );
        let run = classify_database_with(
            &mut db,
            rules,
            HumanOracle::Simulated(&corpus.truth),
            &FourEyesConfig::default(),
            MatcherKind::default(),
        );
        let assist = assist_highlights(&db, rules);
        (db, run, assist)
    };
    let mut db_bytes = Vec::new();
    save(&db, &mut db_bytes).expect("database serializes");
    RunOutput {
        db_bytes,
        dedup_stats: db.dedup_stats(),
        decision_stats: run.stats,
        assist,
    }
}

#[test]
fn one_pass_pipeline_matches_per_stage_at_every_worker_count() {
    let _guard = GLOBAL.lock().unwrap();
    let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.25));
    let rules = Rules::standard();

    let mut baseline: Option<RunOutput> = None;
    for jobs in [1usize, 8] {
        rememberr_par::set_jobs(NonZeroUsize::new(jobs));
        for one_pass in [false, true] {
            let mode = if one_pass { "one-pass" } else { "per-stage" };
            let out = run_pipeline(&corpus, &rules, one_pass);
            match &baseline {
                None => baseline = Some(out),
                Some(want) => {
                    assert_eq!(
                        out.db_bytes, want.db_bytes,
                        "database JSON diverged ({mode}, jobs={jobs})"
                    );
                    assert_eq!(
                        out.dedup_stats, want.dedup_stats,
                        "DedupStats diverged ({mode}, jobs={jobs})"
                    );
                    assert_eq!(
                        out.decision_stats, want.decision_stats,
                        "DecisionStats diverged ({mode}, jobs={jobs})"
                    );
                    assert_eq!(
                        out.assist, want.assist,
                        "assist summary diverged ({mode}, jobs={jobs})"
                    );
                }
            }
        }
    }
    rememberr_par::set_jobs(None);

    let base = baseline.expect("at least one run");
    assert!(base.dedup_stats.entries > 100, "{:?}", base.dedup_stats);
    assert!(base.assist.total_highlights > 0, "{:?}", base.assist);
}

#[test]
fn one_pass_pipeline_tokenizes_each_entry_exactly_once() {
    let _guard = GLOBAL.lock().unwrap();
    let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.25));
    let rules = Rules::standard();

    rememberr_obs::reset();
    rememberr_obs::enable();
    let (mut db, arena) = Database::from_documents_analyzed(
        &corpus.structured,
        DedupStrategy::default(),
        CandidateGen::default(),
    );
    classify_database_analyzed(
        &mut db,
        &rules,
        HumanOracle::Simulated(&corpus.truth),
        &FourEyesConfig::default(),
        MatcherKind::default(),
        &arena,
    );
    assist_highlights_analyzed(&db, &rules, &arena);
    let snapshot = rememberr_obs::snapshot();
    rememberr_obs::disable();
    rememberr_obs::reset();

    let calls = snapshot
        .counters
        .get("textkit.tokenize_calls")
        .copied()
        .unwrap_or(0);
    assert_eq!(
        calls,
        db.len() as u64,
        "the one-pass pipeline must tokenize each erratum exactly once"
    );
}
