//! Query-engine equivalence: the indexed engine (posting lists + selectivity
//! planner) and the scan engine return byte-identical result id sequences and
//! identical counts for randomly generated query combinations, on databases
//! built at worker counts 1 and 8.
//!
//! This is the correctness contract of the indexed query-serving work:
//! posting lists, galloping intersection, and date-window bracketing are
//! throughput knobs, never semantics knobs. The pinned date test nails the
//! inclusive/exclusive bracket convention (`>= after`, `< before`) on both
//! engines so a planner rewrite cannot silently shift a boundary.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

use proptest::prelude::*;
use rememberr::{Database, Query, QueryEngine, QueryIndex};
use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
use rememberr_model::{
    Context, Date, Design, Effect, FixStatus, MsrName, Trigger, TriggerClass, Vendor,
    WorkaroundCategory,
};

/// Annotated databases built from the same corpus at jobs=1 and jobs=8.
fn dbs() -> &'static (Database, Database) {
    static DBS: OnceLock<(Database, Database)> = OnceLock::new();
    DBS.get_or_init(|| {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.15));
        let mut built = Vec::new();
        for jobs in [1usize, 8] {
            rememberr_par::set_jobs(NonZeroUsize::new(jobs));
            let mut db = Database::from_documents(&corpus.structured);
            classify_database(
                &mut db,
                &Rules::standard(),
                HumanOracle::Simulated(&corpus.truth),
                &FourEyesConfig::default(),
            );
            built.push(db);
        }
        rememberr_par::set_jobs(None);
        let jobs8 = built.pop().expect("two databases");
        let jobs1 = built.pop().expect("two databases");
        (jobs1, jobs8)
    })
}

/// A serializable description of one query condition; a random `Vec<Cond>`
/// folded over `Query::new()` covers every facet the planner handles plus
/// the residual predicate (`min_triggers`).
#[derive(Debug, Clone)]
enum Cond {
    Vendor(bool),
    Design(usize),
    Trigger(usize),
    TriggerClass(usize),
    Context(usize),
    Effect(usize),
    Msr(usize),
    Workaround(usize),
    Fix(usize),
    After(u16),
    Before(u16),
    MinTriggers(usize),
    Unique,
    Annotated,
}

fn apply(query: Query, cond: &Cond) -> Query {
    match cond {
        Cond::Vendor(intel) => query.vendor(if *intel { Vendor::Intel } else { Vendor::Amd }),
        Cond::Design(i) => query.design(Design::ALL[i % Design::ALL.len()]),
        Cond::Trigger(i) => query.trigger(Trigger::ALL[i % Trigger::ALL.len()]),
        Cond::TriggerClass(i) => {
            query.trigger_class(TriggerClass::ALL[i % TriggerClass::ALL.len()])
        }
        Cond::Context(i) => query.context(Context::ALL[i % Context::ALL.len()]),
        Cond::Effect(i) => query.effect(Effect::ALL[i % Effect::ALL.len()]),
        Cond::Msr(i) => query.msr(MsrName::ALL[i % MsrName::ALL.len()]),
        Cond::Workaround(i) => {
            query.workaround(WorkaroundCategory::ALL[i % WorkaroundCategory::ALL.len()])
        }
        Cond::Fix(i) => query.fix(FixStatus::ALL[i % FixStatus::ALL.len()]),
        Cond::After(day) => query.disclosed_after(date_from_day(*day)),
        Cond::Before(day) => query.disclosed_before(date_from_day(*day)),
        Cond::MinTriggers(n) => query.min_triggers(n % 4),
        Cond::Unique => query.unique_only(),
        Cond::Annotated => query.annotated_only(),
    }
}

/// Spread an arbitrary day offset over the corpus' disclosure span
/// (roughly 2008-2021) so date windows land on populated, boundary, and
/// empty regions alike.
fn date_from_day(day: u16) -> Date {
    let year = 2008 + u32::from(day) / 336;
    let month = 1 + (u32::from(day) / 28) % 12;
    let dom = 1 + u32::from(day) % 28;
    Date::new(year as i32, month as u8, dom as u8).expect("generated date is valid")
}

fn cond_strategy() -> impl Strategy<Value = Cond> {
    prop_oneof![
        any::<bool>().prop_map(Cond::Vendor),
        (0usize..64).prop_map(Cond::Design),
        (0usize..64).prop_map(Cond::Trigger),
        (0usize..64).prop_map(Cond::TriggerClass),
        (0usize..64).prop_map(Cond::Context),
        (0usize..64).prop_map(Cond::Effect),
        (0usize..64).prop_map(Cond::Msr),
        (0usize..64).prop_map(Cond::Workaround),
        (0usize..64).prop_map(Cond::Fix),
        (0u16..4700).prop_map(Cond::After),
        (0u16..4700).prop_map(Cond::Before),
        (0usize..4).prop_map(Cond::MinTriggers),
        Just(Cond::Unique),
        Just(Cond::Annotated),
    ]
}

/// The full identity of a result sequence: ids in order plus dedup keys.
fn fingerprint(query: &Query, db: &Database, engine: QueryEngine) -> Vec<(String, Option<u32>)> {
    query
        .run_with(db, engine)
        .iter()
        .map(|e| (e.id().to_string(), e.key.map(|k| k.value())))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engines_agree_on_random_queries_at_every_worker_count(
        conds in prop::collection::vec(cond_strategy(), 0..5),
    ) {
        let query = conds.iter().fold(Query::new(), apply);
        let (jobs1, jobs8) = dbs();
        let oracle = fingerprint(&query, jobs1, QueryEngine::Scan);
        for (jobs, db) in [(1usize, jobs1), (8, jobs8)] {
            let scan = fingerprint(&query, db, QueryEngine::Scan);
            let indexed = fingerprint(&query, db, QueryEngine::Indexed);
            prop_assert_eq!(&scan, &oracle, "scan diverges across jobs={}", jobs);
            prop_assert_eq!(&indexed, &oracle, "indexed diverges at jobs={}", jobs);
            prop_assert_eq!(query.count(db), oracle.len(), "count at jobs={}", jobs);
            prop_assert_eq!(
                query.count_indexed(db.query_index(), db),
                oracle.len(),
                "count_indexed at jobs={}",
                jobs
            );
        }
    }

    #[test]
    fn prebuilt_index_matches_cached_index(conds in prop::collection::vec(cond_strategy(), 0..4)) {
        // A freshly built index and the database's lazily cached one serve
        // identical results — the cache is pure memoization.
        let query = conds.iter().fold(Query::new(), apply);
        let (db, _) = dbs();
        let fresh = QueryIndex::build(db);
        let via_fresh: Vec<String> = query
            .run_indexed(&fresh, db)
            .iter()
            .map(|e| e.id().to_string())
            .collect();
        let via_cached: Vec<String> = query
            .run_indexed(db.query_index(), db)
            .iter()
            .map(|e| e.id().to_string())
            .collect();
        prop_assert_eq!(via_fresh, via_cached);
    }
}

#[test]
fn date_bounds_are_inclusive_after_exclusive_before_on_both_engines() {
    let (db, _) = dbs();
    let entry = &db.entries()[db.len() / 2];
    let pivot = entry.provenance.disclosure_date;
    for engine in [QueryEngine::Indexed, QueryEngine::Scan] {
        // `disclosed_after` is inclusive: a window starting exactly at the
        // pivot date still contains the pivot entry.
        let from_pivot = Query::new().disclosed_after(pivot).run_with(db, engine);
        assert!(
            from_pivot.iter().any(|e| e.id() == entry.id()),
            "{engine}: >= after must include the boundary date"
        );
        assert!(from_pivot
            .iter()
            .all(|e| e.provenance.disclosure_date >= pivot));

        // `disclosed_before` is exclusive: a window ending exactly at the
        // pivot date excludes the pivot entry.
        let until_pivot = Query::new().disclosed_before(pivot).run_with(db, engine);
        assert!(
            until_pivot
                .iter()
                .all(|e| e.provenance.disclosure_date < pivot),
            "{engine}: < before must exclude the boundary date"
        );

        // The two windows partition the database exactly.
        assert_eq!(from_pivot.len() + until_pivot.len(), db.len(), "{engine}");

        // An empty window is empty on both engines.
        let empty = Query::new()
            .disclosed_after(pivot)
            .disclosed_before(pivot)
            .run_with(db, engine);
        assert!(empty.is_empty(), "{engine}: [pivot, pivot) must be empty");
    }
}
