//! Accuracy of the pipeline stages against the synthetic ground truth,
//! including the dedup-strategy ablation.

use rememberr::{evaluate_classification, evaluate_dedup, Database, DedupStrategy};
use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
use rememberr_docgen::{CorpusSpec, SyntheticCorpus};

#[test]
fn similarity_cascade_recovers_the_manual_pairs() {
    let spec = CorpusSpec::paper();
    let corpus = SyntheticCorpus::generate(&spec);

    let full = Database::from_documents(&corpus.structured);
    let exact_only =
        Database::from_documents_with(&corpus.structured, DedupStrategy::ExactTitleOnly);

    // The cascade closes exactly the gap the study closed by hand: the
    // near-duplicate pairs plus intra-document duplicates.
    let gap = exact_only.unique_count() - full.unique_count();
    let expected = spec.near_duplicate_pairs + spec.defects.intra_doc_duplicate_pairs;
    assert_eq!(gap, expected, "cascade closes the manual-merge gap");
    assert_eq!(
        full.dedup_stats().cascade_merges,
        expected,
        "cascade merge count"
    );

    // And the cascade makes no mistakes.
    let eval = evaluate_dedup(&full, &corpus.truth);
    assert_eq!(eval.pairs.fp, 0);
    assert_eq!(eval.pairs.fn_, 0);

    // The ablation baseline over-splits but never over-merges.
    let ablation = evaluate_dedup(&exact_only, &corpus.truth);
    assert_eq!(ablation.pairs.fp, 0);
    assert!(ablation.pairs.fn_ > 0);
}

#[test]
fn auto_only_classification_has_high_precision_lower_recall() {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.3));
    let rules = Rules::standard();

    let mut auto_db = Database::from_documents(&corpus.structured);
    classify_database(
        &mut auto_db,
        &rules,
        HumanOracle::None,
        &FourEyesConfig::default(),
    );
    let auto_eval = evaluate_classification(&auto_db, &corpus.truth);

    let mut assisted_db = Database::from_documents(&corpus.structured);
    classify_database(
        &mut assisted_db,
        &rules,
        HumanOracle::Simulated(&corpus.truth),
        &FourEyesConfig::default(),
    );
    let assisted_eval = evaluate_classification(&assisted_db, &corpus.truth);

    // Humans only ever add categories the filter deferred on, so recall
    // improves; precision stays high in both modes.
    assert!(
        assisted_eval.overall.recall() >= auto_eval.overall.recall(),
        "assisted recall {} < auto recall {}",
        assisted_eval.overall.recall(),
        auto_eval.overall.recall()
    );
    assert!(
        auto_eval.overall.precision() > 0.7,
        "auto precision {}",
        auto_eval.overall.precision()
    );
    assert!(
        assisted_eval.overall.f1() > 0.75,
        "assisted F1 {}",
        assisted_eval.overall.f1()
    );
}

#[test]
fn classification_workload_reduction_matches_the_paper_shape() {
    // The study cut 67,680 decisions per human to 2,064 (a ~97% reduction).
    let corpus = SyntheticCorpus::paper();
    let mut db = Database::from_documents(&corpus.structured);
    let run = classify_database(
        &mut db,
        &Rules::standard(),
        HumanOracle::Simulated(&corpus.truth),
        &FourEyesConfig::default(),
    );
    assert_eq!(run.stats.unique_errata, 1_128);
    assert_eq!(run.stats.raw_decisions, 67_680);
    assert!(
        run.stats.reduction() > 0.9,
        "workload reduction {:.3}",
        run.stats.reduction()
    );
    assert!(
        run.stats.human_decisions < 8_000,
        "human decisions {}",
        run.stats.human_decisions
    );
}
