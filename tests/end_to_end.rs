//! End-to-end pipeline test: rendered page streams in, study report out.

use rememberr::{evaluate_classification, evaluate_dedup, Database};
use rememberr_analysis::FullReport;
use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
use rememberr_extract::extract_corpus;
use rememberr_model::Vendor;

/// The full pipeline at 25% scale, starting from the *rendered text* (the
/// hardest input), not the structured documents.
#[test]
fn rendered_text_to_full_report() {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.25));

    // Extraction reconstructs the structured documents exactly.
    let (documents, defects) =
        extract_corpus(corpus.rendered.iter().map(|r| (r.design, r.text.as_str())))
            .expect("extraction succeeds");
    assert_eq!(documents.len(), 28);
    for (got, want) in documents.iter().zip(&corpus.structured) {
        assert_eq!(got.errata, want.errata, "{}", want.design);
        assert_eq!(got.fix_summary, want.fix_summary, "{}", want.design);
    }

    // Dedup on extracted data is perfect against ground truth.
    let mut db = Database::from_documents(&documents);
    let dedup = evaluate_dedup(&db, &corpus.truth);
    assert_eq!(dedup.predicted_clusters, dedup.true_clusters);
    assert_eq!(dedup.pairs.fp, 0);
    assert_eq!(dedup.pairs.fn_, 0);

    // Classification reaches high agreement with the true annotations.
    let run = classify_database(
        &mut db,
        &Rules::standard(),
        HumanOracle::Simulated(&corpus.truth),
        &FourEyesConfig::default(),
    );
    let class_eval = evaluate_classification(&db, &corpus.truth);
    assert!(
        class_eval.overall.f1() > 0.75,
        "classification F1 {}",
        class_eval.overall.f1()
    );

    // The report builds and covers all figures.
    let report = FullReport::build(&db, run.four_eyes.as_ref(), Some(defects));
    let text = report.render_text();
    assert!(text.contains("Fig. 12"));
    assert!(text.contains("Observations O1-O13"));
    assert_eq!(report.observations.len(), 13);
}

/// Entry and unique counts survive the text round trip at any scale.
#[test]
fn counts_survive_extraction_at_multiple_scales() {
    for scale in [0.05, 0.15] {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(scale));
        let (documents, _) =
            extract_corpus(corpus.rendered.iter().map(|r| (r.design, r.text.as_str())))
                .expect("extraction succeeds");
        let db = Database::from_documents(&documents);
        for vendor in Vendor::ALL {
            assert_eq!(
                db.total_count_for(vendor),
                corpus.truth.total_count(vendor),
                "totals at scale {scale} for {vendor}"
            );
            assert_eq!(
                db.unique_count_for(vendor),
                corpus.truth.unique_count(vendor),
                "uniques at scale {scale} for {vendor}"
            );
        }
    }
}
