//! Rule-matcher equivalence: the indexed (default) and exhaustive rule
//! matchers produce byte-identical classified database JSON and identical
//! `DecisionStats` on the full 28-document paper corpus, at every worker
//! count — while the indexed path pays for at least 10× fewer positional
//! pattern evaluations.
//!
//! This is the correctness contract of the indexed multi-pattern matcher:
//! anchor-token pruning and single-pass snippet extraction are throughput
//! knobs, never semantics knobs.

use std::num::NonZeroUsize;

use rememberr::{save, Database, DedupStrategy};
use rememberr_classify::{
    classify_database_with, DecisionStats, FourEyesConfig, HumanOracle, MatcherKind, Rules,
};
use rememberr_docgen::{CorpusSpec, GroundTruth, SyntheticCorpus};
use rememberr_extract::extract_corpus;
use rememberr_model::ErrataDocument;

fn paper_corpus() -> (Vec<ErrataDocument>, GroundTruth) {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::paper());
    let (documents, _defects) =
        extract_corpus(corpus.rendered.iter().map(|r| (r.design, r.text.as_str())))
            .expect("seeded corpus extracts");
    (documents, corpus.truth)
}

fn run(
    documents: &[ErrataDocument],
    truth: &GroundTruth,
    rules: &Rules,
    matcher: MatcherKind,
    jobs: usize,
) -> (Vec<u8>, DecisionStats, String) {
    rememberr_par::set_jobs(NonZeroUsize::new(jobs));
    rememberr_obs::reset();
    rememberr_obs::enable();
    let mut db = Database::from_documents(documents);
    let stats = classify_database_with(
        &mut db,
        rules,
        HumanOracle::Simulated(truth),
        &FourEyesConfig::default(),
        matcher,
    )
    .stats;
    let counters = rememberr_obs::snapshot().counters_json();
    rememberr_obs::disable();
    rememberr_obs::reset();
    rememberr_par::set_jobs(None);
    let mut bytes = Vec::new();
    save(&db, &mut bytes).expect("database serializes");
    (bytes, stats, counters)
}

#[test]
fn indexed_matches_exhaustive_bytewise_at_every_worker_count() {
    let (documents, truth) = paper_corpus();
    let rules = Rules::standard();
    let (oracle_bytes, oracle_stats, _) =
        run(&documents, &truth, &rules, MatcherKind::Exhaustive, 1);
    assert!(oracle_stats.auto_decided > 0, "{oracle_stats:?}");

    let mut per_matcher_counters: Vec<Option<String>> = vec![None, None];
    for jobs in [1usize, 8] {
        for (slot, matcher) in [MatcherKind::Indexed, MatcherKind::Exhaustive]
            .into_iter()
            .enumerate()
        {
            let (bytes, stats, counters) = run(&documents, &truth, &rules, matcher, jobs);
            assert_eq!(
                bytes, oracle_bytes,
                "database JSON differs for {matcher} at jobs={jobs}"
            );
            assert_eq!(stats, oracle_stats, "{matcher} at jobs={jobs}");
            // The whole counter section — including the new pattern_evals /
            // patterns_pruned effort counters — is jobs-invariant.
            match &per_matcher_counters[slot] {
                None => per_matcher_counters[slot] = Some(counters),
                Some(first) => assert_eq!(
                    &counters, first,
                    "counters differ for {matcher} at jobs={jobs}"
                ),
            }
        }
    }
}

#[test]
fn indexed_matcher_does_ten_times_less_pattern_work() {
    let (documents, truth) = paper_corpus();
    let rules = Rules::standard();

    let mut evals = [0u64, 0];
    for (slot, matcher) in [MatcherKind::Indexed, MatcherKind::Exhaustive]
        .into_iter()
        .enumerate()
    {
        rememberr_obs::reset();
        rememberr_obs::enable();
        let mut db =
            Database::from_documents_opts(&documents, DedupStrategy::default(), Default::default());
        rememberr_obs::reset(); // drop dedup counters; measure classify only
        let _ = classify_database_with(
            &mut db,
            &rules,
            HumanOracle::Simulated(&truth),
            &FourEyesConfig::default(),
            matcher,
        );
        let snap = rememberr_obs::snapshot();
        rememberr_obs::disable();
        rememberr_obs::reset();
        evals[slot] = snap.counters["classify.pattern_evals"];
        if matcher == MatcherKind::Indexed {
            // Every library pattern is either evaluated or pruned.
            let pruned = snap.counters["classify.patterns_pruned"];
            let library = rules.matcher().len() as u64;
            let unique =
                snap.counters["classify.raw_decisions"] / rememberr_model::Category::COUNT as u64;
            assert_eq!(evals[slot] + pruned, library * unique);
        } else {
            assert!(!snap.counters.contains_key("classify.patterns_pruned"));
        }
    }

    // The acceptance bar: the indexed matcher positionally evaluates at
    // least 10x fewer patterns than the per-pattern oracle on the full
    // paper corpus.
    assert!(
        evals[1] >= 10 * evals[0],
        "expected >= 10x reduction: exhaustive {} vs indexed {}",
        evals[1],
        evals[0]
    );
}

#[test]
fn obs_counters_report_classify_effort() {
    let (documents, truth) = paper_corpus();
    rememberr_obs::reset();
    rememberr_obs::enable();
    let mut db = Database::from_documents(&documents);
    let _ = classify_database_with(
        &mut db,
        &Rules::standard(),
        HumanOracle::Simulated(&truth),
        &FourEyesConfig::default(),
        MatcherKind::Indexed,
    );
    let counters = rememberr_obs::snapshot().counters_json();
    rememberr_obs::disable();
    rememberr_obs::reset();
    assert!(counters.contains("classify.pattern_evals"), "{counters}");
    assert!(counters.contains("classify.patterns_pruned"), "{counters}");
}
