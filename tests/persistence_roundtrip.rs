//! Persistence across the pipeline: annotated databases and Table VII
//! records survive round trips byte-for-byte.

use rememberr::{load, save, Database, Query};
use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
use rememberr_model::MachineErratum;

fn annotated_db() -> (SyntheticCorpus, Database) {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.1));
    let mut db = Database::from_documents(&corpus.structured);
    classify_database(
        &mut db,
        &Rules::standard(),
        HumanOracle::Simulated(&corpus.truth),
        &FourEyesConfig::default(),
    );
    (corpus, db)
}

#[test]
fn annotated_database_roundtrips() {
    let (_, db) = annotated_db();
    let mut buf = Vec::new();
    save(&db, &mut buf).expect("save succeeds");
    let restored = load(buf.as_slice()).expect("load succeeds");
    assert_eq!(restored, db);

    // Queries behave identically on the restored database.
    let q = Query::new().unique_only().annotated_only();
    assert_eq!(q.count(&db), q.count(&restored));
}

#[test]
fn saved_database_is_json_lines() {
    let (_, db) = annotated_db();
    let mut buf = Vec::new();
    save(&db, &mut buf).expect("save succeeds");
    let text = String::from_utf8(buf).expect("valid UTF-8");
    assert_eq!(text.lines().count(), db.len() + 1);
    for line in text.lines() {
        let _: serde_json::Value = serde_json::from_str(line).expect("each line is JSON");
    }
}

#[test]
fn every_unique_entry_exports_to_table_vii_format() {
    let (_, db) = annotated_db();
    for entry in db.unique_entries() {
        let record = MachineErratum {
            key: entry.key.expect("keyed"),
            title: entry.erratum.title.clone(),
            annotation: entry.annotation.clone().unwrap_or_default(),
            comments: String::new(),
            root_cause: None,
            workaround: entry.erratum.workaround.clone(),
            status: entry.erratum.status.clone(),
        };
        let parsed: MachineErratum = record
            .render()
            .parse()
            .unwrap_or_else(|e| panic!("{}: {e}", entry.id()));
        assert_eq!(parsed, record, "{}", entry.id());
    }
}
