//! Candidate-generator equivalence: the indexed (default) and exhaustive
//! cascade candidate generators produce byte-identical database JSON and
//! identical `cascade_merges` on the full 28-document paper corpus, at
//! every worker count — while the indexed path pays for at least 5× fewer
//! full edit-distance evaluations.
//!
//! This is the correctness contract of the sublinear dedup work: candidate
//! pruning and similarity fast paths are throughput knobs, never semantics
//! knobs.

use std::num::NonZeroUsize;

use rememberr::{save, CandidateGen, Database, DedupStats, DedupStrategy};
use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
use rememberr_extract::extract_corpus;
use rememberr_model::ErrataDocument;

fn paper_documents() -> Vec<ErrataDocument> {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::paper());
    let (documents, _defects) =
        extract_corpus(corpus.rendered.iter().map(|r| (r.design, r.text.as_str())))
            .expect("seeded corpus extracts");
    documents
}

fn run(documents: &[ErrataDocument], gen: CandidateGen, jobs: usize) -> (Vec<u8>, DedupStats) {
    rememberr_par::set_jobs(NonZeroUsize::new(jobs));
    let db = Database::from_documents_opts(documents, DedupStrategy::default(), gen);
    rememberr_par::set_jobs(None);
    let mut bytes = Vec::new();
    save(&db, &mut bytes).expect("database serializes");
    (bytes, db.dedup_stats())
}

#[test]
fn indexed_matches_exhaustive_bytewise_at_every_worker_count() {
    let documents = paper_documents();
    let (oracle_bytes, oracle_stats) = run(&documents, CandidateGen::Exhaustive, 1);
    assert!(oracle_stats.cascade_merges > 0, "{oracle_stats:?}");

    let mut indexed_stats = None;
    for jobs in [1usize, 8] {
        for gen in [CandidateGen::Indexed, CandidateGen::Exhaustive] {
            let (bytes, stats) = run(&documents, gen, jobs);
            assert_eq!(
                bytes, oracle_bytes,
                "database JSON differs for {gen} at jobs={jobs}"
            );
            assert_eq!(
                stats.cascade_merges, oracle_stats.cascade_merges,
                "cascade_merges differ for {gen} at jobs={jobs}"
            );
            assert_eq!(stats, oracle_stats, "{gen} at jobs={jobs}");
            if gen == CandidateGen::Indexed {
                // Effort diagnostics are themselves jobs-invariant.
                match &indexed_stats {
                    None => indexed_stats = Some(stats),
                    Some(first) => {
                        assert_eq!(stats.comparisons_made, first.comparisons_made);
                        assert_eq!(stats.candidates_pruned, first.candidates_pruned);
                    }
                }
            }
        }
    }

    // The acceptance bar: the indexed path does >= 5x less edit-distance
    // work than the all-pairs oracle on the default corpus.
    let indexed = indexed_stats.expect("indexed path ran");
    assert!(
        oracle_stats.comparisons_made >= 5 * indexed.comparisons_made,
        "expected >= 5x reduction: exhaustive {} vs indexed {}",
        oracle_stats.comparisons_made,
        indexed.comparisons_made
    );
}

#[test]
fn obs_counters_report_dedup_effort() {
    let documents = paper_documents();
    rememberr_obs::reset();
    rememberr_obs::enable();
    let _ =
        Database::from_documents_opts(&documents, DedupStrategy::default(), CandidateGen::Indexed);
    let counters = rememberr_obs::snapshot().counters_json();
    rememberr_obs::disable();
    rememberr_obs::reset();
    assert!(counters.contains("dedup.comparisons_made"), "{counters}");
    assert!(counters.contains("dedup.candidates_pruned"), "{counters}");
}
