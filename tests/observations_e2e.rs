//! The headline result: all thirteen observations hold on the paper-scale
//! corpus after the complete pipeline — extraction from rendered text,
//! deduplication, and classification.

use rememberr::Database;
use rememberr_analysis::{observations, render_observations};
use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
use rememberr_docgen::SyntheticCorpus;
use rememberr_extract::extract_corpus;

#[test]
fn all_observations_hold_after_the_full_pipeline() {
    let corpus = SyntheticCorpus::paper();
    let (documents, _) =
        extract_corpus(corpus.rendered.iter().map(|r| (r.design, r.text.as_str())))
            .expect("extraction succeeds");

    let mut db = Database::from_documents(&documents);
    assert_eq!(db.len(), 2_563);
    assert_eq!(db.unique_count(), 1_128);

    classify_database(
        &mut db,
        &Rules::standard(),
        HumanOracle::Simulated(&corpus.truth),
        &FourEyesConfig::default(),
    );

    let obs = observations(&db);
    let failing: Vec<String> = obs
        .iter()
        .filter(|o| !o.holds)
        .map(|o| format!("O{}: {} ({})", o.id, o.statement, o.evidence))
        .collect();
    assert!(
        failing.is_empty(),
        "observations failing after full pipeline:\n{}\n\nfull table:\n{}",
        failing.join("\n"),
        render_observations(&obs)
    );
}
