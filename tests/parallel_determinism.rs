//! Worker-count invariance: the full pipeline (generate → extract → dedup →
//! classify → persist) produces byte-identical database JSON, identical
//! `DedupStats`, and byte-identical observability counter sections at
//! `jobs ∈ {1, 2, 8}` on an identically seeded corpus — with full span
//! profiling enabled, whose own output (stitched span trees, Chrome trace)
//! must stay well-formed without perturbing the deterministic sections.
//!
//! This is the headline guarantee of the parallel execution layer: worker
//! count is a pure throughput knob, never a semantics knob.

use std::num::NonZeroUsize;

use rememberr::{save, Database, DedupStats};
use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
use rememberr_extract::extract_corpus;

/// One full seeded pipeline run at the current worker count, returning
/// everything that must be jobs-invariant. Span profiling is on for the
/// whole run; before returning, the stitched span tree is checked for
/// well-formedness (no orphan worker roots, a parseable Chrome trace).
fn seeded_pipeline_run() -> (Vec<u8>, DedupStats, String) {
    rememberr_obs::reset();
    rememberr_obs::enable();

    let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.1));
    let (documents, _defects) =
        extract_corpus(corpus.rendered.iter().map(|r| (r.design, r.text.as_str())))
            .expect("seeded corpus extracts");
    let mut db = Database::from_documents(&documents);
    classify_database(
        &mut db,
        &Rules::standard(),
        HumanOracle::Simulated(&corpus.truth),
        &FourEyesConfig::default(),
    );
    let mut bytes = Vec::new();
    save(&db, &mut bytes).expect("database serializes");
    let stats = db.dedup_stats();
    let counters = rememberr_obs::snapshot().counters_json();
    assert_spans_stitch_cleanly();

    rememberr_obs::disable();
    rememberr_obs::reset();
    (bytes, stats, counters)
}

/// Stitching leaves no `par.worker` span as a root (every worker span
/// found its spawning stage), and the Chrome trace of the run is JSON that
/// round-trips through our serde.
fn assert_spans_stitch_cleanly() {
    let spans = rememberr_obs::take_spans_stitched();
    assert!(!spans.is_empty(), "profiled run recorded no spans");
    for root in &spans {
        assert_ne!(
            root.name, "par.worker",
            "worker span orphaned at the root: {root:?}"
        );
    }
    let trace = rememberr_obs::chrome_trace(&spans);
    let parsed: serde::Value = serde_json::from_str(&trace).expect("chrome trace parses");
    let events = parsed
        .get("traceEvents")
        .and_then(serde::Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
}

#[test]
fn pipeline_output_is_identical_across_worker_counts() {
    let mut baseline: Option<(Vec<u8>, DedupStats, String)> = None;
    for jobs in [1usize, 2, 8] {
        rememberr_par::set_jobs(NonZeroUsize::new(jobs));
        let (bytes, stats, counters) = seeded_pipeline_run();
        match &baseline {
            None => baseline = Some((bytes, stats, counters)),
            Some((want_bytes, want_stats, want_counters)) => {
                assert_eq!(
                    &bytes, want_bytes,
                    "database JSON differs between jobs=1 and jobs={jobs}"
                );
                assert_eq!(
                    &stats, want_stats,
                    "DedupStats differ between jobs=1 and jobs={jobs}"
                );
                assert_eq!(
                    &counters, want_counters,
                    "obs counter section differs between jobs=1 and jobs={jobs}"
                );
            }
        }
    }
    rememberr_par::set_jobs(None);

    // Sanity: the run produced real data, not three empty matches.
    let (bytes, stats, counters) = baseline.expect("at least one run");
    assert!(!bytes.is_empty());
    assert!(stats.entries > 100, "{stats:?}");
    assert!(stats.clusters > 0, "{stats:?}");
    assert!(counters.contains("dedup.comparisons_made"), "{counters}");
    assert!(counters.contains("classify.raw_decisions"), "{counters}");
}
