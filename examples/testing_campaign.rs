//! Section VI in action: planning a design-testing campaign from the
//! database.
//!
//! Demonstrates the paper's key insight as an executable model: triggers
//! are conjunctive (a campaign step must apply *all* of a bug's triggers),
//! contexts and effects are disjunctive (running in one applicable context
//! and watching one observable effect suffices).
//!
//! ```sh
//! cargo run --release --example testing_campaign
//! ```

use rememberr::Database;
use rememberr_analysis::{
    blackbox_guidance, fig12_trigger_correlation, plan_campaign, recommend_observation_points,
    top_trigger_pairs,
};
use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
use rememberr_model::{Trigger, TriggerSet};

fn main() {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.5));
    let mut db = Database::from_documents(&corpus.structured);
    classify_database(
        &mut db,
        &Rules::standard(),
        HumanOracle::Simulated(&corpus.truth),
        &FourEyesConfig::default(),
    );

    // Which stimuli empirically interact? (Figure 12 distilled.)
    let matrix = fig12_trigger_correlation(&db);
    println!("== Strongest trigger interactions (combine these stimuli) ==");
    for (a, b, n) in top_trigger_pairs(&matrix, 8) {
        println!("  {:<14} x {:<14} -> {n:>4} known bugs", a.code(), b.code());
    }
    println!();

    // A 10-step campaign, 3 stimuli per step, 4 observation points.
    let plan = plan_campaign(&db, 10, 3, 4);
    println!("{}", plan.render_text());

    // If the rig can exert power transitions under MSR-driven configs
    // (the paper's concrete recommendation), where should it look?
    let stimuli: TriggerSet = [
        Trigger::ConfigRegister,
        Trigger::PowerStateChange,
        Trigger::Throttling,
    ]
    .into_iter()
    .collect();
    println!(
        "{}",
        recommend_observation_points(&db, &stimuli).render_text(40)
    );

    // Formal-methods scoping: which design parts not to black-box.
    println!("{}", blackbox_guidance(&db).render_text(40));
}
