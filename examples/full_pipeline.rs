//! The complete RemembERR pipeline at paper scale.
//!
//! Generates the calibrated 2,563-erratum corpus, renders it to page
//! streams, extracts it back (detecting every "errata in errata" defect),
//! deduplicates, classifies with the rule library plus the four-eyes
//! simulation, evaluates against ground truth, and prints the full study
//! report — every figure and table of the paper.
//!
//! ```sh
//! cargo run --release --example full_pipeline
//! ```

use rememberr::{evaluate_classification, evaluate_dedup, Database};
use rememberr_analysis::FullReport;
use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
use rememberr_docgen::SyntheticCorpus;
use rememberr_extract::extract_corpus;

fn main() {
    // 1. Corpus: the substitute for the 28 vendor PDF documents.
    let corpus = SyntheticCorpus::paper();
    eprintln!("[1/5] generated {} errata", corpus.total_errata());

    // 2. Extraction from the rendered page streams.
    let (documents, defects) =
        extract_corpus(corpus.rendered.iter().map(|r| (r.design, r.text.as_str())))
            .expect("corpus extracts cleanly");
    eprintln!(
        "[2/5] extracted {} documents, {} defects detected",
        documents.len(),
        defects.total()
    );

    // 3. Database construction + duplicate keying.
    let mut db = Database::from_documents(&documents);
    eprintln!(
        "[3/5] database: {} entries -> {} unique bugs",
        db.len(),
        db.unique_count()
    );

    // 4. Classification (auto rules + simulated four-eyes annotation).
    let run = classify_database(
        &mut db,
        &Rules::standard(),
        HumanOracle::Simulated(&corpus.truth),
        &FourEyesConfig::default(),
    );
    eprintln!(
        "[4/5] classification: {} of {} decisions auto-resolved ({:.1}% reduction)",
        run.stats.auto_decided,
        run.stats.raw_decisions,
        100.0 * run.stats.reduction()
    );

    // 5. Evaluation against ground truth (impossible in the original study).
    let dedup_eval = evaluate_dedup(&db, &corpus.truth);
    let class_eval = evaluate_classification(&db, &corpus.truth);
    eprintln!(
        "[5/5] dedup: precision {:.3}, recall {:.3}; classification F1 {:.3}",
        dedup_eval.pairs.precision(),
        dedup_eval.pairs.recall(),
        class_eval.overall.f1()
    );

    // The full report: every figure and table.
    let report = FullReport::build(&db, run.four_eyes.as_ref(), Some(defects));
    println!("{}", report.render_text());
}
