//! Custom queries over the database, the machine-readable erratum format
//! (Table VII), and the annotator's highlighting assist.
//!
//! The paper's artifact ships "an example custom script" to bootstrap
//! reader-defined analyses; this is the Rust equivalent.
//!
//! ```sh
//! cargo run --example custom_query
//! ```

use rememberr::{Database, Query};
use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
use rememberr_model::{
    Date, Effect, FixStatus, MachineErratum, Trigger, Vendor, WorkaroundCategory,
};
use rememberr_textkit::{highlights, render_markup};

fn main() {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.25));
    let mut db = Database::from_documents(&corpus.structured);
    let rules = Rules::standard();
    classify_database(
        &mut db,
        &rules,
        HumanOracle::Simulated(&corpus.truth),
        &FourEyesConfig::default(),
    );

    // A bespoke research question: unfixed AMD hangs without workarounds,
    // disclosed since 2017 — the bugs a runtime monitor must catch alone.
    let exposed = Query::new()
        .vendor(Vendor::Amd)
        .effect(Effect::Hang)
        .workaround(WorkaroundCategory::None)
        .fix(FixStatus::NoFixPlanned)
        .disclosed_after(Date::new(2017, 1, 1).expect("valid date"))
        .unique_only()
        .run(&db);
    println!(
        "unmitigated AMD hang bugs disclosed since 2017: {}",
        exposed.len()
    );
    for entry in exposed.iter().take(5) {
        println!("  {}  {}", entry.id(), entry.erratum.title);
    }

    // Export one annotated entry in the proposed machine-readable format
    // (Table VII) and parse it back.
    if let Some(entry) = Query::new()
        .trigger(Trigger::FloatingPoint)
        .unique_only()
        .run(&db)
        .first()
    {
        let record = MachineErratum {
            key: entry.key.expect("keyed"),
            title: entry.erratum.title.clone(),
            annotation: entry.annotation.clone().unwrap_or_default(),
            comments: String::new(),
            root_cause: None,
            workaround: entry.erratum.workaround.clone(),
            status: entry.erratum.status.clone(),
        };
        println!("\n== Table VII machine-readable record ==\n{record}");
        let parsed: MachineErratum = record.render().parse().expect("roundtrips");
        assert_eq!(parsed, record);
    }

    // The annotator's view: category highlights over an erratum description.
    if let Some(entry) = db.entries().first() {
        let set = rules.highlight_set();
        let hs = highlights(&set, &entry.erratum.description);
        println!(
            "\n== Highlighted description ({} matches) ==\n{}",
            hs.len(),
            render_markup(&entry.erratum.description, &hs)
        );
    }
}
