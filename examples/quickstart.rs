//! Quickstart: generate a corpus, build the database, ask it questions.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rememberr::{Database, Query};
use rememberr_analysis::fig10_trigger_frequency;
use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
use rememberr_model::{Context, Trigger, Vendor};

fn main() {
    // A 20%-scale corpus keeps the example fast; CorpusSpec::paper() gives
    // the full 2,563-erratum corpus.
    let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.2));
    println!(
        "generated {} errata across {} documents",
        corpus.total_errata(),
        corpus.structured.len()
    );

    // Build the keyed database and annotate it.
    let mut db = Database::from_documents(&corpus.structured);
    println!(
        "database: {} entries, {} unique bugs (Intel {}, AMD {})",
        db.len(),
        db.unique_count(),
        db.unique_count_for(Vendor::Intel),
        db.unique_count_for(Vendor::Amd),
    );
    classify_database(
        &mut db,
        &Rules::standard(),
        HumanOracle::Simulated(&corpus.truth),
        &FourEyesConfig::default(),
    );

    // Queries: how many unique bugs need a power-state change AND an MSR
    // write (triggers are conjunctive)?
    let combo = Query::new()
        .trigger(Trigger::ConfigRegister)
        .trigger(Trigger::PowerStateChange)
        .unique_only()
        .count(&db);
    println!("bugs needing MSR write + power-state change together: {combo}");

    // ... and how many surface in virtual-machine guests?
    let vm = Query::new()
        .context(Context::VmGuest)
        .unique_only()
        .count(&db);
    println!("bugs applicable in VM-guest context: {vm}");

    // The headline chart: most frequent triggers per vendor.
    for (_, chart) in fig10_trigger_frequency(&db, 8) {
        println!("\n{}", chart.render_text(40));
    }
}
